"""Adaptive heatmap scaling methods (Section IV-C, Fig. 2).

Observed metric values span many orders of magnitude, so the mapping from
value to normalized color position must adapt to the distribution.  Five
methods are provided; the three the paper contributes are:

- :class:`MeanCenteredScale` — scale runs over ``[0, 2·mean]``; outliers
  saturate and stand out (bottleneck detection);
- :class:`MedianCenteredScale` — scale runs over ``[0, 2·median]``;
  outlier-resistant, groups similar magnitudes (value grouping);
- :class:`HistogramScale` — values are bucketed; a value's position is its
  bucket index over the bucket count, maximally separating the observed
  distribution regardless of gaps.

Plus the two Cube-style interpolation baselines the paper compares
against: :class:`LinearScale` and :class:`ExponentialScale` (min-max).
"""

from __future__ import annotations

import enum
import math
import statistics
from typing import Sequence

from repro.errors import VisualizationError

__all__ = [
    "ScalingMethod",
    "Scaling",
    "MeanCenteredScale",
    "MedianCenteredScale",
    "HistogramScale",
    "LinearScale",
    "ExponentialScale",
    "make_scaling",
]


class ScalingMethod(enum.Enum):
    """User-selectable scaling method identifiers."""

    MEAN = "mean"
    MEDIAN = "median"
    HISTOGRAM = "histogram"
    LINEAR = "linear"
    EXPONENTIAL = "exponential"


class Scaling:
    """Base class: fit to observed values, then normalize any value to [0,1]."""

    method: ScalingMethod

    def __init__(self, values: Sequence[float]):
        cleaned = [float(v) for v in values if not math.isnan(float(v))]
        if not cleaned:
            raise VisualizationError("cannot fit a scale to an empty value set")
        self.values = cleaned

    def normalize(self, value: float) -> float:
        raise NotImplementedError

    def normalize_all(self) -> list[float]:
        return [self.normalize(v) for v in self.values]

    def ticks(self, count: int = 5) -> list[tuple[float, float]]:
        """(value, position) legend ticks across the scale's value span."""
        lo, hi = self.domain()
        if count < 2:
            raise VisualizationError("need at least two ticks")
        out = []
        for i in range(count):
            value = lo + (hi - lo) * i / (count - 1)
            out.append((value, self.normalize(value)))
        return out

    def domain(self) -> tuple[float, float]:
        """The value span the scale covers without clamping."""
        raise NotImplementedError


class _CenteredScale(Scaling):
    """Shared implementation: scale over [0, 2c] for a center statistic c.

    A zero center (e.g. the median of a movement heatmap where most
    edges move nothing) would map *every* value — including the only
    hot spots — to position 0, rendering bottlenecks as coolest green
    and inverting the Section IV-C intent.  In that case the scale
    falls back to max-based linear interpolation over ``[0, max]`` so
    the nonzero outliers still saturate the warm end.
    """

    def __init__(self, values: Sequence[float]):
        super().__init__(values)
        if any(v < 0 for v in self.values):
            raise VisualizationError("centered scales require nonnegative values")
        self.center = self._center(sorted(self.values))
        self._max = max(self.values)

    def _center(self, ordered: list[float]) -> float:
        raise NotImplementedError

    def normalize(self, value: float) -> float:
        if self.center == 0:
            if self._max == 0:
                return 0.0  # every observation is zero: nothing to rank
            return min(1.0, max(0.0, value / self._max))
        # Observations above 2c clamp to 1 ("clamped to 2c").
        return min(1.0, max(0.0, value / (2.0 * self.center)))

    def domain(self) -> tuple[float, float]:
        if self.center == 0:
            return (0.0, self._max)
        return (0.0, 2.0 * self.center)


class MeanCenteredScale(_CenteredScale):
    """Scale centered on the arithmetic mean — outlier-sensitive by design."""

    method = ScalingMethod.MEAN

    def _center(self, ordered: list[float]) -> float:
        return statistics.fmean(ordered)


class MedianCenteredScale(_CenteredScale):
    """Scale centered on the median — outlier-resistant value grouping."""

    method = ScalingMethod.MEDIAN

    def _center(self, ordered: list[float]) -> float:
        return statistics.median(ordered)


class HistogramScale(Scaling):
    """Bucket-index scaling: color = bucket position / bucket count.

    Buckets are the *distinct observed values* (up to ``max_buckets``, after
    which equal-width binning over the observed span is used).  This
    distorts the scale so every distinct observation gets a distinct color
    regardless of the gaps between values.
    """

    method = ScalingMethod.HISTOGRAM

    def __init__(self, values: Sequence[float], max_buckets: int = 256):
        super().__init__(values)
        distinct = sorted(set(self.values))
        if len(distinct) <= max_buckets:
            self.buckets = distinct
            self._edges: list[float] | None = None
        else:
            lo, hi = distinct[0], distinct[-1]
            width = (hi - lo) / max_buckets
            self._edges = [lo + width * i for i in range(1, max_buckets)]
            self.buckets = [lo + width * (i + 0.5) for i in range(max_buckets)]

    def bucket_index(self, value: float) -> int:
        if self._edges is None:
            # Index of the largest bucket value <= value (clamped).
            import bisect

            idx = bisect.bisect_right(self.buckets, value) - 1
            return min(max(idx, 0), len(self.buckets) - 1)
        import bisect

        return min(bisect.bisect_right(self._edges, value), len(self.buckets) - 1)

    def normalize(self, value: float) -> float:
        n = len(self.buckets)
        if n == 1:
            return 0.0
        return self.bucket_index(value) / (n - 1)

    def domain(self) -> tuple[float, float]:
        return (min(self.values), max(self.values))


class LinearScale(Scaling):
    """Min-max linear interpolation (Cube's default behaviour)."""

    method = ScalingMethod.LINEAR

    def __init__(self, values: Sequence[float]):
        super().__init__(values)
        self.lo = min(self.values)
        self.hi = max(self.values)

    def normalize(self, value: float) -> float:
        if self.hi == self.lo:
            return 0.0
        return min(1.0, max(0.0, (value - self.lo) / (self.hi - self.lo)))

    def domain(self) -> tuple[float, float]:
        return (self.lo, self.hi)


class ExponentialScale(Scaling):
    """Logarithmic min-max interpolation (Cube's 'exponential' option).

    Positions are linear in ``log(value)``; requires positive values (zero
    values are nudged to the smallest positive observation).
    """

    method = ScalingMethod.EXPONENTIAL

    def __init__(self, values: Sequence[float]):
        super().__init__(values)
        positive = [v for v in self.values if v > 0]
        if not positive:
            raise VisualizationError("exponential scaling needs positive values")
        self.lo = min(positive)
        self.hi = max(positive)

    def normalize(self, value: float) -> float:
        value = max(value, self.lo)
        if self.hi == self.lo:
            return 0.0
        t = (math.log(value) - math.log(self.lo)) / (math.log(self.hi) - math.log(self.lo))
        return min(1.0, max(0.0, t))

    def domain(self) -> tuple[float, float]:
        return (self.lo, self.hi)


_METHODS = {
    ScalingMethod.MEAN: MeanCenteredScale,
    ScalingMethod.MEDIAN: MedianCenteredScale,
    ScalingMethod.HISTOGRAM: HistogramScale,
    ScalingMethod.LINEAR: LinearScale,
    ScalingMethod.EXPONENTIAL: ExponentialScale,
}


def make_scaling(
    method: ScalingMethod | str, values: Sequence[float]
) -> Scaling:
    """Build a fitted scaling by method name — the UI's dropdown action."""
    if isinstance(method, str):
        try:
            method = ScalingMethod(method)
        except ValueError:
            raise VisualizationError(
                f"unknown scaling method {method!r}; choose from "
                f"{[m.value for m in ScalingMethod]}"
            ) from None
    return _METHODS[method](values)
