"""Heatmap assembly: scaling method + color scale → per-element colors."""

from __future__ import annotations

from typing import Generic, Hashable, Mapping, Sequence, TypeVar

from repro.errors import VisualizationError
from repro.viz.color import GREEN_YELLOW_RED, Color, ColorScale
from repro.viz.scaling import Scaling, ScalingMethod, make_scaling

__all__ = ["Heatmap"]

K = TypeVar("K", bound=Hashable)


class Heatmap(Generic[K]):
    """Color assignment for a keyed set of metric values.

    This is the object behind every in-situ overlay: fit a scaling to the
    observed values, sample the color scale, and hand out per-element
    colors plus a legend.  Switching the scaling method (the user-facing
    dropdown of Section IV-C) re-fits without touching the values.
    """

    def __init__(
        self,
        values: Mapping[K, float],
        method: ScalingMethod | str = ScalingMethod.MEDIAN,
        colors: ColorScale = GREEN_YELLOW_RED,
    ):
        if not values:
            raise VisualizationError("heatmap requires at least one value")
        self.values: dict[K, float] = dict(values)
        self.colors = colors
        self.scaling: Scaling = make_scaling(method, list(self.values.values()))

    @property
    def method(self) -> ScalingMethod:
        return self.scaling.method

    def with_method(self, method: ScalingMethod | str) -> "Heatmap[K]":
        """A re-fitted heatmap with a different scaling method."""
        return Heatmap(self.values, method=method, colors=self.colors)

    def with_colors(self, colors: ColorScale) -> "Heatmap[K]":
        """The same heatmap rendered with a different color scale."""
        clone = Heatmap(self.values, method=self.method, colors=colors)
        return clone

    def position(self, key: K) -> float:
        """Normalized [0, 1] scale position of one element's value."""
        return self.scaling.normalize(self.values[key])

    def color(self, key: K) -> Color:
        """Display color of one element."""
        return self.colors.sample(self.position(key))

    def color_of_value(self, value: float) -> Color:
        """Display color of an arbitrary value under the fitted scale."""
        return self.colors.sample(self.scaling.normalize(value))

    def assignments(self) -> dict[K, Color]:
        """All element colors at once."""
        return {key: self.color(key) for key in self.values}

    def legend(self, ticks: int = 5) -> list[tuple[float, Color]]:
        """(value, color) pairs for a legend across the fitted domain."""
        return [
            (value, self.colors.sample(position))
            for value, position in self.scaling.ticks(ticks)
        ]

    def distinct_colors(self) -> int:
        """Number of distinct colors currently assigned (separation metric)."""
        return len(set(self.assignments().values()))

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"Heatmap({len(self.values)} values, method={self.method.value}, "
            f"colors={self.colors.name})"
        )
