"""The interactive analysis tool facade.

The paper packages its analyses as a VS Code extension; here the same
workflow is a scriptable :class:`Session`:

>>> session = Session(my_program)            # or an SDFG
>>> gv = session.global_view()               # Section IV
>>> hm = gv.movement_heatmap({"I": 256}, method="mean")
>>> svg = gv.render(edge_overlay="movement", env={"I": 256})
>>> lv = session.local_view({"I": 8, "J": 8, "K": 5})   # Section V
>>> lv.access_heatmap("in_field")
>>> lv.miss_counts("in_field")

plus an HTML report writer and a small CLI (``repro-view``).
"""

from repro.tool.session import GlobalView, LocalView, Session

__all__ = ["Session", "GlobalView", "LocalView"]
