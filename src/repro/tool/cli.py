"""``repro-view``: generate an HTML analysis report from the command line.

Usage::

    repro-view path/to/module.py --function myprog \\
        --params I=256,J=256,K=160 --local I=8,J=8,K=5 \\
        --line-size 64 --capacity 512 -o report.html

The module is imported, the named ``@repro.program`` function (or the only
one, when unambiguous) is analyzed, and a report containing the global
view, per-container access heatmaps and physical-movement estimates is
written.

``repro-view serve MODULE`` instead starts the long-lived concurrent
analysis service (see :mod:`repro.serve`), exposing the same products
over HTTP.  ``repro-view tune MODULE`` runs the auto-tuning search over
transform sequences (see :mod:`repro.tool.tune_cli`).

Exit codes: ``0`` on success, ``1`` on a usage or analysis error, and
``3`` when the report was written but one or more ``--sweep`` points
failed (partial results).
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.frontend.program import Program
from repro.tool.session import Session

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-view",
        description="Data-movement analysis report generator",
    )
    parser.add_argument("module", help="Python file containing @repro.program functions")
    parser.add_argument("--function", help="program name (default: the only one)")
    parser.add_argument(
        "--params",
        default="",
        help="comma-separated SYMBOL=VALUE pairs for the global view",
    )
    parser.add_argument(
        "--local",
        default="",
        help="comma-separated SYMBOL=VALUE pairs enabling the local view",
    )
    parser.add_argument("--line-size", type=int, default=64, help="cache line bytes")
    parser.add_argument(
        "--capacity", type=int, default=512, help="modeled cache capacity in lines"
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="sweep a local-view parameter over the listed values "
        "(repeatable; axes combine as a cross product on top of --local)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --sweep evaluation (default: serial)",
    )
    parser.add_argument(
        "--no-adaptive",
        action="store_true",
        help="always honour --workers instead of measuring the first sweep "
        "point and choosing serial when the pool cannot win",
    )
    parser.add_argument("-o", "--output", default="report.html", help="output HTML path")
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-stage wall-time spans of the analysis pipeline",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write the hierarchical span trace of the run as JSON to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write run metrics (counters/gauges/histograms) as JSON to PATH",
    )
    parser.add_argument(
        "--no-fast",
        action="store_true",
        help="disable the vectorized simulation fast path (use the interpreter)",
    )
    parser.add_argument(
        "--explain-cache",
        action="store_true",
        help="print the per-pass cache report (runs, hits, timings, and why "
        "each pass last recomputed)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist analysis results to this directory and reuse them "
        "across runs and processes (default: $REPRO_CACHE_DIR if set, "
        "else memory-only)",
    )
    return parser


def _parse_sweep_spec(items: list[str]) -> dict[str, list[int]]:
    spec: dict[str, list[int]] = {}
    for item in items:
        if "=" not in item:
            raise ReproError(
                f"invalid sweep axis {item!r} (use NAME=V1,V2,...)"
            )
        name, values = item.split("=", 1)
        try:
            spec[name.strip()] = [int(v) for v in values.split(",") if v.strip()]
        except ValueError as exc:
            raise ReproError(f"invalid sweep values in {item!r}: {exc}") from exc
        if not spec[name.strip()]:
            raise ReproError(f"sweep axis {item!r} lists no values")
    return spec


def _parse_env(text: str) -> dict[str, int]:
    env: dict[str, int] = {}
    if not text:
        return env
    for pair in text.split(","):
        if "=" not in pair:
            raise ReproError(f"invalid parameter assignment {pair!r} (use NAME=VALUE)")
        name, value = pair.split("=", 1)
        env[name.strip()] = int(value)
    return env


def _load_program(path: str, function: str | None) -> Program:
    file = Path(path)
    if not file.exists():
        raise ReproError(f"no such file: {path}")
    spec = importlib.util.spec_from_file_location(file.stem, file)
    if spec is None or spec.loader is None:
        raise ReproError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    programs = {
        name: obj for name, obj in vars(module).items() if isinstance(obj, Program)
    }
    if not programs:
        raise ReproError(f"{path} defines no @repro.program functions")
    if function is not None:
        if function not in programs:
            raise ReproError(
                f"{path} has no program {function!r}; found {sorted(programs)}"
            )
        return programs[function]
    if len(programs) > 1:
        raise ReproError(
            f"{path} defines several programs ({sorted(programs)}); "
            "pick one with --function"
        )
    return next(iter(programs.values()))


#: Exit code when the report was produced but sweep points failed.
EXIT_SWEEP_FAILURES = 3


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # ``repro-view serve MODULE ...`` — the long-lived analysis
        # service (kept out of build_parser so the report-generator
        # interface is unchanged).
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "tune":
        # ``repro-view tune MODULE ...`` — auto-tuning search over
        # transform sequences (see :mod:`repro.tuning`).
        from repro.tool.tune_cli import main as tune_main

        return tune_main(argv[1:])
    args = build_parser().parse_args(argv)
    sweep_failures = 0
    try:
        program = _load_program(args.module, args.function)
        env = _parse_env(args.params)
        local_env = _parse_env(args.local)

        session = Session(program, cache_dir=args.cache_dir)
        report = session.report(f"Analysis of {program.name}")

        gv = session.global_view()
        report.add_heading("Global view")
        if env:
            report.add_svg(
                gv.render(env=env, edge_overlay="movement"),
                caption=f"logical data movement at {env}",
            )
            report.add_table(
                ["metric", "value"],
                [
                    ["total logical movement [bytes]", f"{gv.total_movement(env):.3g}"],
                    ["total arithmetic operations", f"{gv.total_ops(env):.3g}"],
                ],
            )
        else:
            report.add_svg(gv.render(), caption="program dataflow")
            report.add_paragraph(
                "Pass --params to evaluate the symbolic metrics and color "
                "the movement heatmap."
            )

        if local_env:
            lv = session.local_view(
                local_env,
                line_size=args.line_size,
                capacity_lines=args.capacity,
                fast=not args.no_fast,
            )
            report.add_heading(f"Local view (parameterized at {local_env})")
            for data in lv.result.containers():
                counts = lv.access_heatmap(data)
                report.add_svg(
                    lv.render_container(data, values=dict(counts)),
                    caption=f"access counts on {data}",
                )
            moved = lv.physical_movement()
            misses = lv.miss_counts()
            report.add_table(
                ["container", "cold misses", "capacity misses", "est. moved bytes"],
                [
                    [name, misses[name].cold, misses[name].capacity, moved[name]]
                    for name in sorted(moved)
                ],
                caption=(
                    f"cache model: {args.line_size}-byte lines, "
                    f"{args.capacity}-line capacity"
                ),
            )

        if args.sweep:
            from repro.analysis.executor import SweepPointError
            from repro.analysis.parametric import parameter_grid

            spec = _parse_sweep_spec(args.sweep)
            grid = [
                {**local_env, **point} for point in parameter_grid(spec)
            ]
            run = session.sweep(
                grid,
                workers=args.workers,
                line_size=args.line_size,
                capacity_lines=args.capacity,
                fast=not args.no_fast,
                on_error="record",
                adaptive=not args.no_adaptive,
            )
            rows = []
            for outcome in run.outcomes:
                label = ", ".join(f"{k}={v}" for k, v in (
                    outcome.params.items()
                ))
                if isinstance(outcome, SweepPointError):
                    rows.append([
                        label,
                        f"failed ({outcome.kind})",
                        outcome.message,
                        "",
                        "",
                    ])
                else:
                    rows.append([
                        label,
                        outcome.total_accesses,
                        sum(c.cold for c in outcome.misses.values()),
                        sum(c.capacity for c in outcome.misses.values()),
                        outcome.total_moved_bytes,
                    ])
            caption = f"{len(run)} sweep points"
            if args.workers:
                caption += f", {args.workers} workers"
            if run.errors:
                sweep_failures = len(run.errors)
                caption += f", {sweep_failures} failed"
                print(
                    f"warning: {sweep_failures} of {len(run)} sweep points "
                    f"failed (first: {run.errors[0].params}: "
                    f"{run.errors[0].message})",
                    file=sys.stderr,
                )
            report.add_heading("Parametric sweep")
            if run.errors:
                report.add_paragraph(
                    f"{sweep_failures} of {len(run)} sweep points failed — "
                    "see the rows marked 'failed' below."
                )
            report.add_table(
                ["parameters", "accesses", "cold", "capacity", "est. moved bytes"],
                rows,
                caption=caption,
            )

        report.save(args.output)
        print(f"report written to {args.output}")
        if args.timings:
            print("pipeline stage timings:")
            print(session.timings.report())
        if args.explain_cache:
            print("analysis-pass cache report:")
            print(session.pass_report())
            from repro.symbolic.compiled import compile_cache_info

            info = compile_cache_info()
            print(
                "expression compile cache: "
                f"{info['hits']} hits, {info['misses']} misses, "
                f"{info['entries']} entries"
            )
        if args.trace:
            session.export_trace(args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics_out:
            session.export_metrics(args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        if sweep_failures:
            # A partially-failed sweep must not render as success: the
            # report lists the failures, and the process exit code lets
            # scripts and CI detect them.
            print(
                f"error: {sweep_failures} sweep point(s) failed; "
                "the report contains partial results",
                file=sys.stderr,
            )
            return EXIT_SWEEP_FAILURES
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
