"""``repro-view tune``: auto-tune a program's data movement from the CLI.

Usage::

    repro-view tune path/to/module.py --params I=8,J=8,K=5 \\
        --budget 200 --beam 3 --depth 4 \\
        --line-size 64 --capacity 4 --json tuning.json --roofline roof.svg

The module is imported like for report generation; ``--builder NAME``
selects a module-level function returning an :class:`~repro.sdfg.SDFG`
instead of a ``@repro.program`` function (for workloads built directly
on the IR, e.g. :mod:`repro.apps.cloudsc`).  Progress is streamed to
stderr, the winning transform sequence to stdout; ``--json`` dumps the
full :class:`~repro.tuning.TuningResult` and ``--roofline`` renders the
search trajectory as an SVG roofline chart.

Exit codes: ``0`` on success (improvement found or not), ``1`` on a
usage or search error.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.sdfg.sdfg import SDFG
from repro.tool.session import Session

__all__ = ["main", "build_tune_parser"]


def build_tune_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-view tune",
        description="Beam search over transform sequences minimizing "
        "modeled physical data movement",
    )
    parser.add_argument(
        "module", help="Python file with @repro.program functions or an "
        "SDFG builder",
    )
    parser.add_argument("--function", help="program name (default: the only one)")
    parser.add_argument(
        "--builder",
        help="module-level function returning an SDFG (alternative to "
        "@repro.program, for IR-level workloads)",
    )
    parser.add_argument(
        "--params",
        required=True,
        help="comma-separated SYMBOL=VALUE simulation sizes for the "
        "locality objective",
    )
    parser.add_argument(
        "--transforms",
        default="",
        help="comma-separated transform names to search over "
        "(default: the full registry)",
    )
    parser.add_argument("--budget", type=int, default=512, help="max scored candidates")
    parser.add_argument("--beam", type=int, default=6, help="frontier width per round")
    parser.add_argument("--depth", type=int, default=4, help="max sequence length")
    parser.add_argument("--line-size", type=int, default=64, help="cache line bytes")
    parser.add_argument(
        "--capacity", type=int, default=512, help="modeled cache capacity in lines"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="wall-clock budget in seconds"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for candidate evaluation (default: serial, "
        "which shares the pass cache across candidates)",
    )
    parser.add_argument(
        "--no-fast",
        action="store_true",
        help="disable the vectorized simulation fast path",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-round progress on stderr"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the full tuning result as JSON"
    )
    parser.add_argument(
        "--roofline", metavar="PATH", help="render the search trajectory as "
        "an SVG roofline chart",
    )
    parser.add_argument(
        "--peak", type=float, default=64e9,
        help="roofline peak compute rate [ops/s]",
    )
    parser.add_argument(
        "--bandwidth", type=float, default=32e9,
        help="roofline memory bandwidth [bytes/s]",
    )
    return parser


def _load_target(path: str, function: str | None, builder: str | None):
    """The SDFG (or Program) to tune, from a user module."""
    if builder is None:
        from repro.tool.cli import _load_program

        return _load_program(path, function)
    file = Path(path)
    if not file.exists():
        raise ReproError(f"no such file: {path}")
    spec = importlib.util.spec_from_file_location(file.stem, file)
    if spec is None or spec.loader is None:
        raise ReproError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    fn = getattr(module, builder, None)
    if fn is None or not callable(fn):
        raise ReproError(f"{path} has no callable {builder!r}")
    sdfg = fn()
    if not isinstance(sdfg, SDFG):
        raise ReproError(
            f"{builder}() returned {type(sdfg).__name__}, expected an SDFG"
        )
    return sdfg


def _progress(event: dict) -> None:
    kind = event.get("event")
    if kind == "start":
        print(
            f"baseline: {event['baseline']['moved_bytes']} bytes moved; "
            f"searching {len(event['transforms'])} transform(s), "
            f"beam {event['beam']}, depth {event['depth']}, "
            f"budget {event['budget']}",
            file=sys.stderr,
        )
    elif kind == "round":
        print(
            f"round {event['round']}: {event['scored']} of "
            f"{event['candidates']} candidate(s) scored "
            f"({event['evaluated']} total)",
            file=sys.stderr,
        )


def main(argv: list[str] | None = None) -> int:
    args = build_tune_parser().parse_args(argv)
    try:
        from repro.tool.cli import _parse_env

        target = _load_target(args.module, args.function, args.builder)
        params = _parse_env(args.params)
        if not params:
            raise ReproError("--params must assign at least one symbol")
        transforms = [
            t.strip() for t in args.transforms.split(",") if t.strip()
        ] or None

        session = Session(target)
        result = session.tune(
            params,
            transforms=transforms,
            beam=args.beam,
            depth=args.depth,
            budget=args.budget,
            line_size=args.line_size,
            capacity_lines=args.capacity,
            fast=not args.no_fast,
            timeout=args.timeout,
            workers=args.workers,
            on_event=None if args.quiet else _progress,
        )

        base = result.baseline.score.moved_bytes
        best = result.best.score.moved_bytes
        print(
            f"baseline: {base} bytes moved at {params} "
            f"({args.line_size}B lines x {args.capacity})"
        )
        print(
            f"best:     {best} bytes moved "
            f"({result.improvement:.1%} reduction)"
        )
        steps = result.best.to_dict()["sequence"]
        if steps:
            print("sequence:")
            for step in steps:
                print(f"  - {step['transform']}: {step['detail']}")
        else:
            print("sequence: <baseline is already best>")
        print(
            f"search:   {result.evaluated} candidates in {result.rounds} "
            f"round(s), {result.deduplicated} duplicates skipped, "
            f"{result.pass_hits} pass-cache hits, "
            f"{result.seconds:.2f}s (stopped: {result.stopped})"
        )

        if args.json:
            with open(args.json, "w", encoding="utf-8") as f:
                json.dump(result.to_dict(), f, indent=2, default=str)
            print(f"result written to {args.json}")
        if args.roofline:
            from repro.viz.roofline import MachineModel, render_roofline

            machine = MachineModel(peak_ops=args.peak, bandwidth=args.bandwidth)
            svg = render_roofline(
                result.trajectory, machine=machine,
                title=session.sdfg.name,
            )
            with open(args.roofline, "w", encoding="utf-8") as f:
                f.write(svg)
            print(f"roofline written to {args.roofline}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
