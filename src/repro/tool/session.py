"""Session: the top-level object tying analyses and views together."""

from __future__ import annotations

import statistics
from collections import OrderedDict
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis import (
    ParameterSweep,
    edge_movement_bytes,
    program_ops,
    scope_intensities,
    scope_ops,
    total_movement_bytes,
)
from repro.analysis.executor import (
    CancelToken,
    SweepExecutor,
    SweepPointError,
    SweepRun,
)
from repro.analysis.parametric import (
    LocalSweepPoint,
    evaluate_metrics,
    parameter_grid,
)
from repro.analysis.timing import StageTimings, maybe_span
from repro.errors import AnalysisError, ReproError
from repro.obs import MetricsRegistry, Tracer
from repro.frontend.program import Program
from repro.sdfg.nodes import MapEntry
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.simulation import (
    CacheModel,
    MemoryModel,
    related_access_counts,
    simulate_state,
)
from repro.simulation.arrays import (
    ArrayTrace,
    build_array_trace,
    container_physical_movement_array,
    element_distance_lists,
    per_container_misses_array,
    per_container_outcomes,
    per_element_misses_array,
)
from repro.simulation.movement import (
    container_physical_movement,
    edge_physical_movement,
    per_container_misses,
    per_element_misses,
)
from repro.simulation.simulator import SimulationResult
from repro.simulation.stackdist import (
    element_stack_distances,
    stack_distances,
    stack_distances_array,
)
from repro.simulation.vectorized import fast_line_trace
from repro.viz.graphview import render_state
from repro.viz.heatmap import Heatmap
from repro.viz.interaction import ParameterSliders
from repro.viz.lod import FoldState
from repro.viz.overview import build_outline
from repro.viz.report import ReportBuilder
from repro.viz.containerview import render_container
from repro.viz.histogramview import render_histogram

__all__ = ["Session", "GlobalView", "LocalView", "SimulationCache"]


class SimulationCache:
    """Bounded LRU cache of simulation and locality-pipeline results.

    Slider interactions in the paper's interactive loop revisit parameter
    points constantly; memoizing per ``(cache scope, state label, frozen
    params, memory-model config)`` makes revisits O(1).  The cache is owned by the
    :class:`Session` and shared by every :class:`LocalView` it opens, with
    least-recently-used eviction bounding memory.
    """

    def __init__(self, maxsize: int = 32):
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: tuple, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def info(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:
        return (
            f"SimulationCache(entries={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class Session:
    """One analysis session over a program.

    Accepts either a :class:`~repro.frontend.program.Program` (translated
    on construction) or a ready SDFG.  The session owns a
    :class:`SimulationCache` shared by all local views it opens, a
    hierarchical :class:`~repro.obs.trace.Tracer` (mirrored into the
    flat :class:`~repro.analysis.timing.StageTimings` collector exposed
    as :attr:`timings`), and a
    :class:`~repro.obs.metrics.MetricsRegistry` counting cache and
    sweep activity.

    Cache entries are keyed by *content* — SDFG name, state label and a
    per-session generation counter bumped by :meth:`load` — never by
    ``id()``.  CPython reuses object ids after garbage collection, so an
    id-keyed cache in a long-lived session that loads a second program
    can silently serve results computed for the previous one.
    """

    def __init__(self, program_or_sdfg: Program | SDFG, cache_size: int = 32):
        self._generation = 0
        self._sdfg = self._coerce(program_or_sdfg)
        self.cache = SimulationCache(maxsize=cache_size)
        self.timings = StageTimings()
        self.tracer = Tracer(timings=self.timings)
        self.metrics = MetricsRegistry()

    @staticmethod
    def _coerce(program_or_sdfg: Program | SDFG) -> SDFG:
        if isinstance(program_or_sdfg, Program):
            return program_or_sdfg.to_sdfg()
        if isinstance(program_or_sdfg, SDFG):
            return program_or_sdfg
        raise ReproError(
            f"Session expects a Program or SDFG, got {type(program_or_sdfg).__name__}"
        )

    @property
    def sdfg(self) -> SDFG:
        return self._sdfg

    @sdfg.setter
    def sdfg(self, program_or_sdfg: Program | SDFG) -> None:
        self.load(program_or_sdfg)

    def load(self, program_or_sdfg: Program | SDFG) -> SDFG:
        """Load another program into this session.

        Bumps the cache generation, so entries computed for the previous
        program can never be served for the new one — even when CPython
        hands the new SDFG (or its states) the recycled ``id`` of the
        old one.
        """
        self._sdfg = self._coerce(program_or_sdfg)
        self._generation += 1
        return self._sdfg

    def _cache_scope(self) -> tuple:
        """Stable, content-based key prefix for session cache entries."""
        return (self._sdfg.name, self._generation)

    def global_view(self, state: SDFGState | None = None) -> "GlobalView":
        """Open the global (whole-program) analysis view."""
        return GlobalView(self.sdfg, state or self.sdfg.start_state)

    def local_view(
        self,
        symbols: Mapping[str, int],
        state: SDFGState | None = None,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
    ) -> "LocalView":
        """Open the local (parameterized close-up) view.

        *symbols* are the small simulation sizes; *line_size* and
        *capacity_lines* parameterize the cache model (both adjustable
        later via :attr:`LocalView.cache`).  *fast* selects the vectorized
        simulation path (pass False to force the interpreter).  Views
        share the session's result cache, so revisiting a parameter point
        reuses the previous simulation.
        """
        return LocalView(
            self.sdfg,
            symbols,
            state or self.sdfg.start_state,
            line_size=line_size,
            capacity_lines=capacity_lines,
            include_transients=include_transients,
            fast=fast,
            cache=self.cache,
            timings=self.tracer,
            scope=self._cache_scope(),
        )

    def sweep(
        self,
        params_grid: Mapping[str, Iterable[int]] | Sequence[Mapping[str, int]],
        workers: int | None = None,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        on_error: str = "raise",
        retries: int = 2,
        timeout: float | None = None,
        cancel: CancelToken | None = None,
    ) -> list[LocalSweepPoint] | SweepRun:
        """Run the local-view locality pipeline over a parameter grid.

        *params_grid* is either a mapping of per-parameter value lists
        (expanded to their cross product) or an explicit sequence of
        parameter points.  With ``workers > 1``, unevaluated points fan
        out over worker processes via the fault-tolerant
        :class:`~repro.analysis.executor.SweepExecutor`; results always
        come back in grid order.  Every successfully evaluated point is
        memoized in the session cache, so re-sweeping (or sweeping a
        refined grid) only pays for new points — including after a
        partial failure, where completed points are never re-run.

        *on_error* selects the failure contract:

        - ``"raise"`` (default) — any failed point raises
          :class:`~repro.errors.AnalysisError` naming its parameters
          (after the rest of the grid finished and was cached);
        - ``"record"`` — return a
          :class:`~repro.analysis.executor.SweepRun` whose grid-ordered
          outcomes mix evaluated points with structured
          :class:`~repro.analysis.executor.SweepPointError` records.

        *retries*, *timeout* and *cancel* are forwarded to the executor
        (transient-failure retries, per-point timeout in seconds, and a
        cooperative :class:`~repro.analysis.executor.CancelToken`).
        """
        if on_error not in ("raise", "record"):
            raise ReproError(
                f"unknown on_error mode {on_error!r}; choose 'raise' or 'record'"
            )
        if isinstance(params_grid, Mapping):
            grid = parameter_grid(params_grid)
        else:
            grid = [dict(point) for point in params_grid]

        def key_of(params: Mapping[str, int]) -> tuple:
            return (
                "sweep",
                self._cache_scope(),
                frozenset(params.items()),
                line_size,
                capacity_lines,
                include_transients,
                fast,
            )

        out: list[LocalSweepPoint | SweepPointError | None] = [None] * len(grid)
        with self.tracer.span("sweep", points=len(grid)):
            missing: list[int] = []
            for index, params in enumerate(grid):
                point = self.cache.get(key_of(params))
                if point is None:
                    missing.append(index)
                else:
                    out[index] = point
            self.metrics.counter("sweep.cache_hits").inc(len(grid) - len(missing))
            if missing:
                executor = SweepExecutor(
                    workers=None if workers is None or workers <= 1 else workers,
                    retries=retries,
                    timeout=timeout,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
                with maybe_span(self.tracer, "fanout"):
                    run = executor.run(
                        self.sdfg,
                        [grid[index] for index in missing],
                        line_size=line_size,
                        capacity_lines=capacity_lines,
                        include_transients=include_transients,
                        fast=fast,
                        cancel=cancel,
                    )
                with maybe_span(self.tracer, "merge"):
                    for index, outcome in zip(missing, run.outcomes):
                        if not isinstance(outcome, SweepPointError):
                            self.cache.put(key_of(grid[index]), outcome)
                        out[index] = outcome
            self.metrics.gauge("cache.entries").set(len(self.cache))
        if on_error == "record":
            return SweepRun(grid, out)
        for outcome in out:
            if isinstance(outcome, SweepPointError):
                raise AnalysisError(
                    f"sweep point {outcome.params} failed "
                    f"({outcome.kind}): {outcome.message}"
                )
        return out  # type: ignore[return-value]

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/occupancy counters of the shared simulation cache."""
        return self.cache.info()

    def export_trace(self, path: str) -> None:
        """Write the session's hierarchical span trace as JSON to *path*."""
        self.tracer.export(path)

    def export_metrics(self, path: str) -> None:
        """Write the session's metrics registry as JSON to *path*."""
        self.metrics.export(path)

    def report(self, title: str | None = None) -> ReportBuilder:
        """A fresh HTML report builder for this session."""
        return ReportBuilder(title or f"Analysis of {self.sdfg.name}")


class GlobalView:
    """The global view (Section IV): whole-program metrics and overlays."""

    def __init__(self, sdfg: SDFG, state: SDFGState):
        self.sdfg = sdfg
        self.state = state
        self.folds = FoldState(state)

    # -- metrics ---------------------------------------------------------------
    def movement_heatmap(
        self,
        env: Mapping[str, int],
        method: str = "mean",
        unique: bool = True,
    ) -> Heatmap:
        """Edge heatmap of logical data-movement volumes."""
        volumes = evaluate_metrics(
            edge_movement_bytes(self.sdfg, self.state, unique=unique), env
        )
        return Heatmap(volumes, method=method)

    def opcount_heatmap(self, env: Mapping[str, int], method: str = "median") -> Heatmap:
        """Node heatmap of arithmetic-operation counts."""
        ops = evaluate_metrics(scope_ops(self.state), env)
        return Heatmap(ops, method=method)

    def intensity_heatmap(self, env: Mapping[str, int], method: str = "median") -> Heatmap:
        """Node heatmap of arithmetic intensity (ops per byte)."""
        intensity = evaluate_metrics(scope_intensities(self.sdfg, self.state), env)
        return Heatmap(intensity, method=method)

    def total_movement(self, env: Mapping[str, int] | None = None, unique: bool = True):
        """Whole-program logical movement (symbolic, or evaluated)."""
        expr = total_movement_bytes(self.sdfg, unique=unique)
        return expr if env is None else float(expr.evaluate(env))

    def total_ops(self, env: Mapping[str, int] | None = None):
        expr = program_ops(self.sdfg)
        return expr if env is None else float(expr.evaluate(env))

    def scaling_sweep(
        self,
        parameter: str,
        points: Iterable[int],
        base_env: Mapping[str, int],
        metric: str = "movement",
    ):
        """Parametric scaling analysis of a global metric (Section IV-D)."""
        metrics = {
            "movement": total_movement_bytes(self.sdfg, unique=True),
            "accesses": total_movement_bytes(self.sdfg, unique=False),
            "ops": program_ops(self.sdfg),
        }
        if metric not in metrics:
            raise ReproError(f"unknown metric {metric!r}; choose from {sorted(metrics)}")
        return ParameterSweep(base_env).run(parameter, points, metrics[metric])

    def rank_parameters(self, base_env: Mapping[str, int], metric: str = "movement"):
        """Which parameters dominate the chosen metric when scaled."""
        expr = (
            total_movement_bytes(self.sdfg, unique=True)
            if metric == "movement"
            else program_ops(self.sdfg)
        )
        return ParameterSweep(base_env).rank_parameters(expr)

    # -- navigation -----------------------------------------------------------
    def outline(self):
        """The hierarchical outline overview."""
        return build_outline(self.sdfg)

    def search(self, query: str):
        """Find graph elements by (case-insensitive) label substring.

        "As with traditional source code, the graphical representation can
        be searched to find specific elements" (Section IV-A).  Returns
        matching outline entries in document order.
        """
        needle = query.lower()
        return [
            entry
            for entry in build_outline(self.sdfg).walk()
            if needle in entry.label.lower()
        ]

    def filter_nodes(self, hide_kinds: Iterable[str]):
        """Nodes remaining visible after hiding element kinds.

        *hide_kinds* uses class names (``"AccessNode"``, ``"Tasklet"``,
        ``"MapEntry"``, ...) — the Section IV-A "filtered out and hidden
        from view" behaviour as an explicit model.
        """
        hidden = set(hide_kinds)
        return [
            node for node in self.state.nodes() if type(node).__name__ not in hidden
        ]

    # -- rendering --------------------------------------------------------------
    def render(
        self,
        env: Mapping[str, int] | None = None,
        edge_overlay: str | None = None,
        node_overlay: str | None = None,
        method: str = "mean",
        show_minimap: bool = True,
        zoom: float = 1.0,
    ) -> str:
        """Render the state as SVG with the requested overlays.

        *zoom* applies the level-of-detail rules; the view's fold state
        (:attr:`folds`) collapses scopes — call ``folds.collapse(entry)``
        or ``folds.collapse_all()`` before rendering.
        """
        edge_hm = node_hm = None
        if edge_overlay == "movement":
            if env is None:
                raise ReproError("movement overlay needs parameter values")
            edge_hm = self.movement_heatmap(env, method=method)
        elif edge_overlay is not None:
            raise ReproError(f"unknown edge overlay {edge_overlay!r}")
        if node_overlay == "ops":
            node_hm = self.opcount_heatmap(env or {})
        elif node_overlay == "intensity":
            node_hm = self.intensity_heatmap(env or {})
        elif node_overlay is not None:
            raise ReproError(f"unknown node overlay {node_overlay!r}")
        return render_state(
            self.state,
            edge_heatmap=edge_hm,
            node_heatmap=node_hm,
            show_minimap=show_minimap,
            folds=self.folds,
            zoom=zoom,
        )


class LocalView:
    """The local view (Section V): parameterized simulation and locality."""

    def __init__(
        self,
        sdfg: SDFG,
        symbols: Mapping[str, int],
        state: SDFGState,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        cache: SimulationCache | None = None,
        timings=None,
        scope: tuple | None = None,
    ):
        self.sdfg = sdfg
        self.state = state
        self.symbols = {k: int(v) for k, v in symbols.items()}
        self.cache = CacheModel(line_size=line_size, capacity_lines=capacity_lines)
        self.include_transients = include_transients
        self.fast = fast
        self.session_cache = cache
        self.timings = timings
        #: Content-based cache-key prefix.  The session passes its
        #: ``(sdfg name, generation)`` scope; standalone views derive one
        #: from the SDFG name alone (they have no shared cache anyway).
        self._scope = scope if scope is not None else (sdfg.name, 0)
        self._result: SimulationResult | None = None
        self._memory: MemoryModel | None = None

    # -- shared-cache plumbing ---------------------------------------------------
    def _sim_key(self) -> tuple:
        """``(scope, state label, frozen params, config)`` memoization key.

        Deliberately content-based: an ``id()``-based key can alias two
        different states once CPython recycles the id of a freed one,
        silently serving a stale simulation for a different program.
        """
        return (
            self._scope,
            self.state.name,
            frozenset(self.symbols.items()),
            self.include_transients,
            self.fast,
        )

    def _cached(self, key: tuple, compute):
        """Memoize *compute()* in the session cache (when one is attached)."""
        if self.session_cache is None:
            return compute()
        value = self.session_cache.get(key)
        if value is None:
            value = compute()
            self.session_cache.put(key, value)
        return value

    # -- simulation (cached) -----------------------------------------------------
    @property
    def result(self) -> SimulationResult:
        if self._result is None:
            self._result = self._cached(
                ("sim", self._sim_key()),
                lambda: simulate_state(
                    self.sdfg,
                    self.symbols,
                    state=self.state,
                    include_transients=self.include_transients,
                    fast=self.fast,
                    timings=self.timings,
                ),
            )
        return self._result

    @property
    def memory(self) -> MemoryModel:
        if self._memory is None:
            key = ("mem", self._scope, frozenset(self.symbols.items()),
                   self.cache.line_size)
            with maybe_span(self.timings, "layout"):
                self._memory = self._cached(
                    key,
                    lambda: MemoryModel(
                        self.sdfg, self.symbols, line_size=self.cache.line_size
                    ),
                )
        return self._memory

    def _line_ids(self) -> list[int]:
        """Cache-line id per event (vectorized when the trace allows it)."""
        key = ("lines", self._sim_key(), self.cache.line_size)
        with maybe_span(self.timings, "layout"):
            return self._cached(
                key, lambda: fast_line_trace(self.result, self.memory)
            )

    def _array_trace(self) -> ArrayTrace | None:
        """Columnar trace, or None when the object pipeline must be used.

        The cache stores ``False`` for "not array-traceable" so the miss
        is only diagnosed once per parameter point.
        """
        key = ("atrace", self._sim_key(), self.cache.line_size)
        with maybe_span(self.timings, "layout"):
            value = self._cached(
                key, lambda: build_array_trace(self.result, self.memory) or False
            )
        return value or None

    def _distances_array(self, trace: ArrayTrace):
        """Per-event stack distances as a float64 array (array pipeline)."""
        key = ("dista", self._sim_key(), self.cache.line_size)
        with maybe_span(self.timings, "stackdist"):
            return self._cached(key, lambda: stack_distances_array(trace.lines))

    def _distances(self) -> list[float]:
        """Per-event stack distances over the full interleaved trace."""
        key = ("dist", self._sim_key(), self.cache.line_size)
        trace = self._array_trace()
        if trace is not None:
            return self._cached(key, lambda: self._distances_array(trace).tolist())
        lines = self._line_ids()
        with maybe_span(self.timings, "stackdist"):
            return self._cached(key, lambda: stack_distances(lines))

    def invalidate(self) -> None:
        """Drop cached simulation state (after mutating the SDFG)."""
        self._result = None
        self._memory = None
        if self.session_cache is not None:
            self.session_cache.clear()

    # -- access patterns ----------------------------------------------------------
    def access_heatmap(self, data: str) -> dict[tuple[int, ...], int]:
        """Flattened access counts per element (Fig. 4b)."""
        return self.result.access_counts(data)

    def playback(self):
        """Iterate animation frames (lists of events per timestep)."""
        return self.result.steps()

    def render_playback_frame(self, step: int, data: str | None = None) -> dict[str, str]:
        """Render the containers with one timestep's accesses highlighted.

        The static equivalent of the "variable speed animation" playback
        (Section V-C): each frame highlights exactly the elements accessed
        at that timestep.  Returns one SVG per container (restrict with
        *data*).
        """
        events = self.result.events_at_step(step)
        if not events:
            raise ReproError(f"no accesses at timestep {step}")
        per_container: dict[str, set[tuple[int, ...]]] = {}
        for event in events:
            per_container.setdefault(event.data, set()).add(event.indices)
        names = [data] if data is not None else sorted(per_container)
        out: dict[str, str] = {}
        for name in names:
            out[name] = self.render_container(
                name, highlights=per_container.get(name, ())
            )
        return out

    def related(self, selections: Sequence[tuple[str, tuple[int, ...]]], data=None):
        """Stacked related-access counts for selected elements (Fig. 4c)."""
        return related_access_counts(self.result, selections, data=data)

    def sliders(self, entry: MapEntry | None = None) -> ParameterSliders:
        """Parameter sliders over a map scope (defaults to the first)."""
        if entry is None:
            entries = self.state.map_entries()
            if not entries:
                raise ReproError("the state has no map scope to parameterize")
            entry = entries[0]
        return ParameterSliders(self.sdfg, self.state, entry, self.symbols)

    # -- locality ----------------------------------------------------------------
    def cache_line_neighbors(self, data: str, indices: tuple[int, ...]):
        """Elements pulled into the cache with ``data[indices]`` (Fig. 5a)."""
        return self.memory.layout(data).neighbors_in_line(
            indices, self.cache.line_size
        )

    def reuse_distances(self, data: str | None = None):
        """Per-element stack-distance lists (Fig. 5b)."""
        trace = self._array_trace()
        if trace is not None:
            return element_distance_lists(
                trace, self._distances_array(trace), data=data
            )
        return element_stack_distances(
            self.result.events, self.memory, data=data, distances=self._distances()
        )

    def reuse_heatmap(self, data: str, stat: str = "median") -> dict[tuple[int, ...], float]:
        """Per-element min/median/max reuse distance (finite values only;
        elements with no finite reuse are omitted)."""
        stats = {"min": min, "max": max, "median": statistics.median}
        if stat not in stats:
            raise ReproError(f"unknown statistic {stat!r}")
        out: dict[tuple[int, ...], float] = {}
        for (name, indices), distances in self.reuse_distances(data).items():
            finite = [d for d in distances if d != float("inf")]
            if finite:
                out[indices] = float(stats[stat](finite))
        return out

    def miss_counts(self, data: str | None = None):
        """Per-container (or one container's per-element) miss counts."""
        trace = self._array_trace()
        if trace is not None:
            distances = self._distances_array(trace)
            with maybe_span(self.timings, "classify"):
                if data is None:
                    return per_container_misses_array(trace, distances, self.cache)
                return per_element_misses_array(trace, distances, self.cache, data)
        distances = self._distances()
        with maybe_span(self.timings, "classify"):
            if data is None:
                return per_container_misses(
                    self.result.events, self.memory, self.cache, distances
                )
            return per_element_misses(
                self.result.events, self.memory, self.cache, data, distances
            )

    def miss_heatmap(self, data: str) -> dict[tuple[int, ...], int]:
        """Per-element total misses of one container (Fig. 5c)."""
        return {
            idx: counts.misses for idx, counts in self.miss_counts(data).items()
        }

    def miss_counts_set_associative(self, num_sets: int, ways: int):
        """Per-container misses under a *set-associative* backend.

        The Discussion's "hardware-specific back-end" extension: instead
        of the fully-associative threshold model, simulate an actual
        set-associative LRU cache and attribute cold / capacity / conflict
        misses per container (conflicts are exactly the misses the
        fully-associative assumption ignores).
        """
        from repro.simulation.cache import MissCounts, classify_three_way

        lines = self._line_ids()
        with maybe_span(self.timings, "classify"):
            kinds = classify_three_way(lines, num_sets, ways)
        trace = self._array_trace()
        if trace is not None:
            with maybe_span(self.timings, "classify"):
                return per_container_outcomes(trace, kinds)
        out: dict[str, MissCounts] = {}
        from repro.simulation.cache import MissKind

        for event, kind in zip(self.result.events, kinds):
            counts = out.setdefault(event.data, MissCounts())
            if kind is MissKind.HIT:
                counts.hits += 1
            elif kind is MissKind.COLD:
                counts.cold += 1
            elif kind is MissKind.CAPACITY:
                counts.capacity += 1
            else:
                counts.conflict += 1
        return out

    def physical_movement(self) -> dict[str, int]:
        """Estimated bytes moved to/from memory per container (Fig. 7)."""
        trace = self._array_trace()
        if trace is not None:
            distances = self._distances_array(trace)
            with maybe_span(self.timings, "classify"):
                return container_physical_movement_array(trace, distances, self.cache)
        distances = self._distances()
        with maybe_span(self.timings, "classify"):
            return container_physical_movement(
                self.result.events, self.memory, self.cache, distances
            )

    def edge_movement(self):
        """Physical-movement estimate per dataflow edge (Fig. 5c overlay)."""
        container_misses = self.miss_counts()
        with maybe_span(self.timings, "classify"):
            return edge_physical_movement(
                self.state,
                None,
                None,
                self.cache,
                container_misses=container_misses,
            )

    # -- rendering ---------------------------------------------------------------
    def render_container(
        self,
        data: str,
        values: Mapping[tuple[int, ...], float] | None = None,
        highlights: Iterable[tuple[int, ...]] = (),
        selections: Iterable[tuple[int, ...]] = (),
        value_label: str = "accesses",
    ) -> str:
        """Render one container grid with optional heatmap/highlights."""
        return render_container(
            data,
            self.result.shape(data),
            values=values,
            highlights=highlights,
            selections=selections,
            value_label=value_label,
        )

    def render_container_aggregated(
        self,
        data: str,
        values: Mapping[tuple[int, ...], float],
        tile: Sequence[int],
        reduce: str = "sum",
        value_label: str = "accesses",
    ) -> str:
        """Render a full-size container with tile aggregation.

        The Discussion's full-size-parameter extension: simulate at real
        sizes, then merge ``tile``-sized blocks of elements into one
        visual tile so the view stays interpretable.
        """
        from repro.viz.containerview import render_container_aggregated

        return render_container_aggregated(
            data,
            self.result.shape(data),
            values,
            tile,
            reduce=reduce,
            value_label=value_label,
        )

    def render_reuse_histogram(self, data: str, indices: tuple[int, ...]) -> str:
        """The Fig. 5b detail histogram for one selected element."""
        distances = self.reuse_distances(data).get((data, indices))
        if not distances:
            raise ReproError(f"element {data}[{indices}] was never accessed")
        label = f"{data}[{', '.join(map(str, indices))}]"
        return render_histogram(distances, title=f"reuse distances of {label}")
