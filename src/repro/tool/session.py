"""Session: thin facades over the incremental analysis-pass pipeline.

Since the pass refactor, :class:`Session`, :class:`GlobalView` and
:class:`LocalView` hold no analysis logic of their own: every metric
query builds a :class:`~repro.passes.base.PassContext` over the current
graph content and asks the session's
:class:`~repro.passes.pipeline.Pipeline` for the product.  Results are
memoized under content-addressed keys, so in-place transformations are
picked up automatically — the next query fingerprints the mutated graph,
misses, and recomputes exactly the affected passes.
"""

from __future__ import annotations

import os
import statistics
from collections import OrderedDict
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis import ParameterSweep
from repro.analysis.executor import (
    CancelToken,
    SweepExecutor,
    SweepPointError,
    SweepRun,
)
from repro.analysis.parametric import (
    LocalSweepPoint,
    parameter_grid,
)
from repro.analysis.timing import StageTimings, maybe_span
from repro.errors import AnalysisError, ReproError
from repro.obs import MetricsRegistry, Tracer
from repro.frontend.program import Program
from repro.passes import (
    DistanceProduct,
    LayoutProduct,
    PassContext,
    Pipeline,
    ResultStore,
    build_pipeline,
)
from repro.passes.store import _LRUBacking
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.sdfg.nodes import MapEntry
from repro.sdfg.sdfg import SDFG
from repro.storage import (
    DEFAULT_MAX_BYTES,
    DiskCache,
    DiskCachedPointFn,
    TieredBacking,
    approx_sizeof,
)
from repro.sdfg.serialize import data_fingerprint, state_fingerprint
from repro.sdfg.state import SDFGState
from repro.simulation import CacheModel, MemoryModel, related_access_counts
from repro.simulation.arrays import (
    element_distance_lists,
    per_container_outcomes,
    per_element_misses_array,
)
from repro.simulation.movement import (
    edge_physical_movement,
    per_element_misses,
)
from repro.simulation.simulator import SimulationResult
from repro.simulation.stackdist import element_stack_distances
from repro.transforms.report import TransformReport
from repro.tuning import TuningResult, TuningSearch
from repro.viz.graphview import render_state
from repro.viz.heatmap import Heatmap
from repro.viz.interaction import ParameterSliders
from repro.viz.lod import FoldState
from repro.viz.overview import build_outline
from repro.viz.report import ReportBuilder
from repro.viz.containerview import render_container
from repro.viz.histogramview import render_histogram

__all__ = ["Session", "GlobalView", "LocalView", "SimulationCache"]


class SimulationCache:
    """Bounded LRU cache of simulation and locality-pipeline results.

    Slider interactions in the paper's interactive loop revisit parameter
    points constantly; memoizing per ``(cache scope, state label, frozen
    params, memory-model config)`` makes revisits O(1).  The cache is owned by the
    :class:`Session` and shared by every :class:`LocalView` it opens, with
    least-recently-used eviction bounding memory.

    Eviction is bounded two ways: by entry count (*maxsize*) and by
    approximate bytes (*max_bytes*) — a few large local-view products
    can dwarf hundreds of tiny symbolic entries, so entry count alone
    is not a memory bound.  Sizes come from *sizeof* (default
    :func:`~repro.storage.sizing.approx_sizeof`).
    """

    def __init__(
        self,
        maxsize: int = 32,
        max_bytes: int | None = None,
        sizeof: Callable[[Any], int] | None = None,
    ):
        self.maxsize = int(maxsize)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._sizeof = sizeof if sizeof is not None else approx_sizeof
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._sizes: dict[tuple, int] = {}
        self.approx_bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def _measure(self, value: Any) -> int:
        try:
            return int(self._sizeof(value))
        except Exception:  # noqa: BLE001 — fault barrier: sizing must never break caching
            return 0

    def _over_budget(self) -> bool:
        if len(self._entries) > self.maxsize:
            return True
        return self.max_bytes is not None and self.approx_bytes > self.max_bytes

    def put(self, key: tuple, value: Any) -> None:
        if key in self._entries:
            self.approx_bytes -= self._sizes.pop(key, 0)
        self._entries[key] = value
        self._entries.move_to_end(key)
        size = self._measure(value)
        self._sizes[key] = size
        self.approx_bytes += size
        # The just-inserted entry is exempt: evicting a single oversized
        # product would only buy a put/miss recompute loop.
        while len(self._entries) > 1 and self._over_budget():
            evicted, _ = self._entries.popitem(last=False)
            self.approx_bytes -= self._sizes.pop(evicted, 0)

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.approx_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def info(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "approx_bytes": self.approx_bytes,
            "max_bytes": 0 if self.max_bytes is None else self.max_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"SimulationCache(entries={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class Session:
    """One analysis session over a program.

    Accepts either a :class:`~repro.frontend.program.Program` (translated
    on construction) or a ready SDFG.  The session owns a
    :class:`SimulationCache` shared by all local views it opens, a
    hierarchical :class:`~repro.obs.trace.Tracer` (mirrored into the
    flat :class:`~repro.analysis.timing.StageTimings` collector exposed
    as :attr:`timings`), and a
    :class:`~repro.obs.metrics.MetricsRegistry` counting cache and
    sweep activity.

    Cache entries are keyed by *content* — SDFG name, state label and a
    per-session generation counter bumped by :meth:`load` — never by
    ``id()``.  CPython reuses object ids after garbage collection, so an
    id-keyed cache in a long-lived session that loads a second program
    can silently serve results computed for the previous one.

    With *cache_dir* (or the ``REPRO_CACHE_DIR`` environment variable)
    set, the pass store becomes persistent: results are written through
    to a crash-safe on-disk :class:`~repro.storage.diskcache.DiskCache`
    shared across processes, so a fresh session over an unchanged
    program re-analyzes from disk instead of recomputing.  Storage
    failures never break analysis — corrupt entries are quarantined and
    recomputed, and an unusable directory degrades the session to
    memory-only with one warning.
    """

    def __init__(
        self,
        program_or_sdfg: Program | SDFG,
        cache_size: int = 32,
        cache_dir: str | os.PathLike | None = None,
        cache_bytes: int | None = None,
    ):
        self._generation = 0
        self._sdfg = self._coerce(program_or_sdfg)
        self.cache = SimulationCache(maxsize=cache_size)
        self.timings = StageTimings()
        self.tracer = Tracer(timings=self.timings)
        self.metrics = MetricsRegistry()
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        if cache_bytes is None:
            env_bytes = os.environ.get("REPRO_CACHE_BYTES", "")
            cache_bytes = int(env_bytes) if env_bytes.isdigit() else DEFAULT_MAX_BYTES
        #: One breaker shared by every sweep/tune of this session: pool
        #: failures in one request protect the next request from paying
        #: the same spawn-and-die cost (half-open probes recover).
        self.pool_breaker = CircuitBreaker(
            "pool", failure_threshold=2, reset_timeout=30.0, metrics=self.metrics
        )
        #: The persistent tier (``None`` when the session is memory-only).
        self.disk: DiskCache | None = None
        backing = _LRUBacking(max(cache_size * 8, 256))
        if cache_dir is not None:
            self.disk = DiskCache(
                cache_dir,
                max_bytes=cache_bytes,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            backing = TieredBacking(backing, self.disk)
        #: Content-addressed store of pass results, separate from the
        #: legacy :attr:`cache` so pass-level memoization never skews the
        #: coarse simulation-cache hit/miss counters.
        self.store = ResultStore(backing=backing)
        self.pipeline = build_pipeline(
            store=self.store, tracer=self.tracer, metrics=self.metrics
        )

    @staticmethod
    def _coerce(program_or_sdfg: Program | SDFG) -> SDFG:
        if isinstance(program_or_sdfg, Program):
            return program_or_sdfg.to_sdfg()
        if isinstance(program_or_sdfg, SDFG):
            return program_or_sdfg
        raise ReproError(
            f"Session expects a Program or SDFG, got {type(program_or_sdfg).__name__}"
        )

    @property
    def sdfg(self) -> SDFG:
        return self._sdfg

    @sdfg.setter
    def sdfg(self, program_or_sdfg: Program | SDFG) -> None:
        self.load(program_or_sdfg)

    def load(self, program_or_sdfg: Program | SDFG) -> SDFG:
        """Load another program into this session.

        Bumps the cache generation, so entries computed for the previous
        program can never be served for the new one — even when CPython
        hands the new SDFG (or its states) the recycled ``id`` of the
        old one.  The generation is part of every content key's scope,
        so the bump also invalidates *disk*-cache hits: entries written
        before the load are simply never addressed again (the shared
        directory itself is left untouched — other processes may still
        be using it).
        """
        self._sdfg = self._coerce(program_or_sdfg)
        self._generation += 1
        self.store.clear()  # memory tier only; disk invalidates by scope
        return self._sdfg

    def _cache_scope(self) -> tuple:
        """Stable, content-based key prefix for session cache entries."""
        return (self._sdfg.name, self._generation)

    def global_view(self, state: SDFGState | None = None) -> "GlobalView":
        """Open the global (whole-program) analysis view."""
        return GlobalView(
            self.sdfg,
            state or self.sdfg.start_state,
            pipeline=self.pipeline,
            scope=self._cache_scope(),
            timings=self.tracer,
        )

    def local_view(
        self,
        symbols: Mapping[str, int],
        state: SDFGState | None = None,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
    ) -> "LocalView":
        """Open the local (parameterized close-up) view.

        *symbols* are the small simulation sizes; *line_size* and
        *capacity_lines* parameterize the cache model (both adjustable
        later via :attr:`LocalView.cache`).  *fast* selects the vectorized
        simulation path (pass False to force the interpreter).  Views
        share the session's result cache, so revisiting a parameter point
        reuses the previous simulation.
        """
        return LocalView(
            self.sdfg,
            symbols,
            state or self.sdfg.start_state,
            line_size=line_size,
            capacity_lines=capacity_lines,
            include_transients=include_transients,
            fast=fast,
            cache=self.cache,
            timings=self.tracer,
            scope=self._cache_scope(),
            pipeline=self.pipeline,
        )

    def point_context(
        self,
        params: Mapping[str, int],
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        base: PassContext | None = None,
    ) -> PassContext:
        """A whole-program :class:`~repro.passes.base.PassContext` for one
        parameter point, suitable for :meth:`product_key` and
        :meth:`~repro.passes.pipeline.Pipeline.run`.

        Passing a previous context as *base* shares its already-computed
        graph fingerprints (valid while the SDFG is unchanged — the
        long-lived analysis service reuses one base per configuration so
        a warm request never re-hashes the graph).
        """
        ctx = PassContext(
            self.sdfg,
            state=None,
            env=params,
            line_size=line_size,
            capacity_lines=capacity_lines,
            include_transients=include_transients,
            fast=fast,
            scope=self._cache_scope(),
            timings=self.tracer,
            metrics=self.metrics,
        )
        if base is not None:
            ctx.adopt_components(base)
        return ctx

    def product_key(self, product: str, ctx: PassContext) -> tuple:
        """The content-addressed pipeline key of *product* under *ctx*.

        Computable without running any pass — the analysis service
        derives HTTP ``ETag`` values and request-coalescing keys from it.
        """
        return self.pipeline.key(product, ctx)

    def sweep(
        self,
        params_grid: Mapping[str, Iterable[int]] | Sequence[Mapping[str, int]],
        workers: int | None = None,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        on_error: str = "raise",
        retries: int = 2,
        timeout: float | None = None,
        cancel: CancelToken | None = None,
        adaptive: bool = True,
        batch: int | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[LocalSweepPoint] | SweepRun:
        """Run the local-view locality pipeline over a parameter grid.

        *params_grid* is either a mapping of per-parameter value lists
        (expanded to their cross product) or an explicit sequence of
        parameter points.  With ``workers > 1``, unevaluated points fan
        out over worker processes via the fault-tolerant
        :class:`~repro.analysis.executor.SweepExecutor`; results always
        come back in grid order.  Every successfully evaluated point is
        memoized in the session cache, so re-sweeping (or sweeping a
        refined grid) only pays for new points — including after a
        partial failure, where completed points are never re-run.

        *on_error* selects the failure contract:

        - ``"raise"`` (default) — any failed point raises
          :class:`~repro.errors.AnalysisError` naming its parameters
          (after the rest of the grid finished and was cached);
        - ``"record"`` — return a
          :class:`~repro.analysis.executor.SweepRun` whose grid-ordered
          outcomes mix evaluated points with structured
          :class:`~repro.analysis.executor.SweepPointError` records.

        *retries*, *timeout* and *cancel* are forwarded to the executor
        (transient-failure retries, per-point timeout in seconds, and a
        cooperative :class:`~repro.analysis.executor.CancelToken`).

        ``adaptive=True`` (default) times the first unevaluated point
        serially and only spawns a worker pool when the measured
        per-point cost predicts a wall-clock win over finishing
        serially — cheap grids never pay pool startup.  Pass
        ``adaptive=False`` to restore the unconditional pool behaviour.

        *batch* sets how many points one worker task evaluates
        (``None`` auto-chunks large grids, ``1`` forces per-point
        tasks); see :class:`~repro.analysis.executor.SweepExecutor`.

        *on_result* is called as ``on_result(index, outcome)`` — with
        *index* in grid order — as each point finishes, including points
        served from the session or disk cache.  The analysis service
        streams sweep progress events from this hook.
        """
        if on_error not in ("raise", "record"):
            raise ReproError(
                f"unknown on_error mode {on_error!r}; choose 'raise' or 'record'"
            )
        if isinstance(params_grid, Mapping):
            grid = parameter_grid(params_grid)
        else:
            grid = [dict(point) for point in params_grid]

        # All points share the graph fingerprints; only ``env`` differs.
        base_ctx: PassContext | None = None

        def ctx_of(params: Mapping[str, int]) -> PassContext:
            nonlocal base_ctx
            ctx = PassContext(
                self.sdfg,
                state=None,
                env=params,
                line_size=line_size,
                capacity_lines=capacity_lines,
                include_transients=include_transients,
                fast=fast,
                scope=self._cache_scope(),
                timings=self.tracer,
                metrics=self.metrics,
            )
            if base_ctx is None:
                base_ctx = ctx
            else:
                ctx.adopt_components(base_ctx)
            return ctx

        def key_of(params: Mapping[str, int]) -> tuple:
            # Content-addressed: embeds the graph/descriptor fingerprints,
            # so an in-place transform can never serve a stale point.
            return ("sweep", self.pipeline.key("local.point", ctx_of(params)))

        def evaluate_inproc(
            sdfg, params, line_size, capacity_lines, include_transients, fast
        ) -> LocalSweepPoint:
            return self.pipeline.run("local.point", ctx_of(params))

        out: list[LocalSweepPoint | SweepPointError | None] = [None] * len(grid)
        with self.tracer.span("sweep", points=len(grid)):
            missing: list[int] = []
            for index, params in enumerate(grid):
                point = self.cache.get(key_of(params))
                if point is None and self.disk is not None:
                    # A fresh session over a warm cache directory serves
                    # the whole grid from disk without spawning a pool.
                    stored = self.store.get(
                        self.pipeline.key("local.point", ctx_of(params))
                    )
                    if not ResultStore.is_miss(stored):
                        point = stored
                        self.cache.put(key_of(params), point)
                if point is None:
                    missing.append(index)
                else:
                    out[index] = point
                    if on_result is not None:
                        on_result(index, point)
            self.metrics.counter("sweep.cache_hits").inc(len(grid) - len(missing))
            if missing:
                pool_workers = (
                    None if workers is None or workers <= 1 else workers
                )
                # With a persistent cache attached, pool workers read and
                # write the shared disk directory themselves: a re-run of
                # the grid in any process is then served from disk, and
                # every worker's fresh evaluation warms it for the others.
                point_fn = None
                if pool_workers is not None and self.disk is not None and not self.disk.disabled:
                    point_fn = DiskCachedPointFn(
                        self.disk.root,
                        {
                            tuple(sorted(grid[index].items())): self.pipeline.key(
                                "local.point", ctx_of(grid[index])
                            )
                            for index in missing
                        },
                        max_bytes=self.disk.max_bytes,
                    )
                executor = SweepExecutor(
                    workers=pool_workers,
                    retries=retries,
                    timeout=timeout,
                    tracer=self.tracer,
                    metrics=self.metrics,
                    point_fn=point_fn,
                    serial_fn=evaluate_inproc,
                    adaptive=adaptive,
                    batch=batch,
                    breaker=self.pool_breaker,
                )
                forward = None
                if on_result is not None:
                    # Executor indices address the missing-points subgrid;
                    # remap them to full-grid order for the caller.
                    forward = lambda sub, outcome: on_result(  # noqa: E731
                        missing[sub], outcome
                    )
                with maybe_span(self.tracer, "fanout"):
                    run = executor.run(
                        self.sdfg,
                        [grid[index] for index in missing],
                        line_size=line_size,
                        capacity_lines=capacity_lines,
                        include_transients=include_transients,
                        fast=fast,
                        cancel=cancel,
                        on_result=forward,
                    )
                with maybe_span(self.tracer, "merge"):
                    for index, outcome in zip(missing, run.outcomes):
                        if not isinstance(outcome, SweepPointError):
                            self.cache.put(key_of(grid[index]), outcome)
                            # Pool-evaluated points enter the pass store
                            # too, so later pipeline queries reuse them.
                            self.store.put(
                                self.pipeline.key(
                                    "local.point", ctx_of(grid[index])
                                ),
                                outcome,
                            )
                        out[index] = outcome
            self.metrics.gauge("cache.entries").set(len(self.cache))
        if on_error == "record":
            return SweepRun(grid, out)
        for outcome in out:
            if isinstance(outcome, SweepPointError):
                raise AnalysisError(
                    f"sweep point {outcome.params} failed "
                    f"({outcome.kind}): {outcome.message}"
                )
        return out  # type: ignore[return-value]

    def apply(self, transform: Any, *args, **kwargs) -> TransformReport:
        """Apply a transformation and report what it modified.

        *transform* is either an object with an ``apply()`` method (e.g. a
        matched :class:`~repro.transforms.map_fusion.MapFusion`) or any
        callable that mutates the SDFG; positional/keyword arguments are
        forwarded.  When the transform does not return a
        :class:`~repro.transforms.report.TransformReport` itself, one is
        derived by diffing content fingerprints around the call.

        Correctness never depends on going through this method — the
        content-addressed pass store observes mutations on the next query
        regardless — but reports applied here are attached to the
        pipeline's invalidation records, so :meth:`pass_report` can name
        the transform that caused each recomputation.
        """
        states_before = {
            s.name: state_fingerprint(s) for s in self._sdfg.states()
        }
        arrays_before = {
            n: data_fingerprint(d) for n, d in self._sdfg.arrays.items()
        }
        logical_before = {
            n: data_fingerprint(d, logical=True)
            for n, d in self._sdfg.arrays.items()
        }
        if hasattr(transform, "apply"):
            name = type(transform).__name__
            outcome = transform.apply(*args, **kwargs)
        else:
            name = getattr(transform, "__name__", type(transform).__name__)
            outcome = transform(*args, **kwargs)
        if isinstance(outcome, TransformReport):
            report = outcome
        else:
            states_after = {
                s.name: state_fingerprint(s) for s in self._sdfg.states()
            }
            arrays_after = {
                n: data_fingerprint(d) for n, d in self._sdfg.arrays.items()
            }
            logical_after = {
                n: data_fingerprint(d, logical=True)
                for n, d in self._sdfg.arrays.items()
            }
            changed_states = tuple(sorted(
                n
                for n in set(states_before) | set(states_after)
                if states_before.get(n) != states_after.get(n)
            ))
            changed_arrays = tuple(sorted(
                n
                for n in set(arrays_before) | set(arrays_after)
                if arrays_before.get(n) != arrays_after.get(n)
            ))
            layout_only = (
                bool(changed_arrays)
                and not changed_states
                and all(
                    logical_before.get(n) == logical_after.get(n)
                    for n in changed_arrays
                )
            )
            report = TransformReport(
                name,
                modified_states=changed_states,
                modified_arrays=changed_arrays,
                layout_only=layout_only,
            )
        self.pipeline.note_transform(report.describe())
        return report

    def tune(
        self,
        params: Mapping[str, int],
        transforms: Sequence[Any] | None = None,
        beam: int = 6,
        depth: int = 4,
        budget: int = 512,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        timeout: float | None = None,
        workers: int | None = None,
        cancel: CancelToken | None = None,
        on_event: Callable[[dict[str, Any]], None] | None = None,
        deadline: Deadline | None = None,
    ) -> TuningResult:
        """Search transform sequences minimizing modeled data movement.

        Runs :class:`~repro.tuning.search.TuningSearch` over the current
        program through *this session's* pipeline, so candidate scoring
        shares the pass cache with every interactive query made so far
        (and vice versa: the winning variant's analyses are warm).

        The session's SDFG is never mutated — candidates are copies.  To
        adopt the winner, ``session.load(result.best.sdfg)``.
        """
        search = TuningSearch(
            self._sdfg,
            params,
            transforms=transforms,
            beam=beam,
            depth=depth,
            budget=budget,
            line_size=line_size,
            capacity_lines=capacity_lines,
            include_transients=include_transients,
            fast=fast,
            timeout=timeout,
            workers=workers,
            pipeline=self.pipeline,
            scope=self._cache_scope() + ("tune",),
            tracer=self.tracer,
            metrics=self.metrics,
        )
        return search.run(cancel=cancel, on_event=on_event, deadline=deadline)

    def pass_report(self) -> str:
        """Per-pass timings, cache hits/misses, and invalidation reasons."""
        lines = [self.pipeline.report()]
        folded = self.metrics.counter("locality.analytic.hits").value
        fallbacks = self.metrics.counter("locality.analytic.fallbacks").value
        if folded or fallbacks:
            lines.append(
                f"analytic locality: {folded} region(s) folded closed-form, "
                f"{fallbacks} enumerated (fallback)"
            )
        info = self.cache.info()
        lines.append(
            f"simulation cache: {info['entries']}/{info['maxsize']} entries, "
            f"{info['hits']} hits, {info['misses']} misses"
        )
        return "\n".join(lines)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/occupancy counters of the shared simulation cache."""
        return self.cache.info()

    def export_trace(self, path: str) -> None:
        """Write the session's hierarchical span trace as JSON to *path*."""
        self.tracer.export(path)

    def export_metrics(self, path: str) -> None:
        """Write the session's metrics registry as JSON to *path*."""
        self.metrics.export(path)

    def report(self, title: str | None = None) -> ReportBuilder:
        """A fresh HTML report builder for this session."""
        return ReportBuilder(title or f"Analysis of {self.sdfg.name}")


class GlobalView:
    """The global view (Section IV): whole-program metrics and overlays.

    A thin facade: every metric is a pipeline product.  Queries build a
    fresh :class:`~repro.passes.base.PassContext`, so the view always
    reflects the *current* graph content — applying a transformation and
    re-querying yields updated heatmaps with no explicit invalidation.
    """

    def __init__(
        self,
        sdfg: SDFG,
        state: SDFGState,
        pipeline: Pipeline | None = None,
        scope: tuple = (),
        timings=None,
    ):
        self.sdfg = sdfg
        self.state = state
        self.folds = FoldState(state)
        self.pipeline = pipeline if pipeline is not None else build_pipeline()
        self._scope = scope if scope else (sdfg.name, 0)
        self._timings = timings

    def _context(self, env: Mapping[str, int] | None = None) -> PassContext:
        return PassContext(
            self.sdfg,
            state=self.state,
            env=env,
            scope=self._scope,
            timings=self._timings,
            metrics=self.pipeline.metrics,
        )

    def _whole_program_context(
        self, env: Mapping[str, int] | None = None
    ) -> PassContext:
        return PassContext(
            self.sdfg, state=None, env=env, scope=self._scope,
            timings=self._timings, metrics=self.pipeline.metrics,
        )

    # -- metrics ---------------------------------------------------------------
    def movement_heatmap(
        self,
        env: Mapping[str, int],
        method: str = "mean",
        unique: bool = True,
    ) -> Heatmap:
        """Edge heatmap of logical data-movement volumes."""
        volumes = self.pipeline.run("global.movement.eval", self._context(env))
        return Heatmap(volumes["unique" if unique else "counted"], method=method)

    def opcount_heatmap(self, env: Mapping[str, int], method: str = "median") -> Heatmap:
        """Node heatmap of arithmetic-operation counts."""
        ops = self.pipeline.run("global.opcount.eval", self._context(env))
        return Heatmap(ops, method=method)

    def intensity_heatmap(self, env: Mapping[str, int], method: str = "median") -> Heatmap:
        """Node heatmap of arithmetic intensity (ops per byte)."""
        intensity = self.pipeline.run("global.intensity.eval", self._context(env))
        return Heatmap(intensity, method=method)

    def _totals(self) -> dict[str, Any]:
        return self.pipeline.run("global.totals", self._whole_program_context())

    def total_movement(self, env: Mapping[str, int] | None = None, unique: bool = True):
        """Whole-program logical movement (symbolic, or evaluated)."""
        expr = self._totals()["movement_unique" if unique else "movement_counted"]
        return expr if env is None else float(expr.evaluate(env))

    def total_ops(self, env: Mapping[str, int] | None = None):
        expr = self._totals()["ops"]
        return expr if env is None else float(expr.evaluate(env))

    def scaling_sweep(
        self,
        parameter: str,
        points: Iterable[int],
        base_env: Mapping[str, int],
        metric: str = "movement",
    ):
        """Parametric scaling analysis of a global metric (Section IV-D)."""
        totals = self._totals()
        metrics = {
            "movement": totals["movement_unique"],
            "accesses": totals["movement_counted"],
            "ops": totals["ops"],
        }
        if metric not in metrics:
            raise ReproError(f"unknown metric {metric!r}; choose from {sorted(metrics)}")
        return self._sweeper(base_env).run(parameter, points, metrics[metric])

    def rank_parameters(self, base_env: Mapping[str, int], metric: str = "movement"):
        """Which parameters dominate the chosen metric when scaled."""
        totals = self._totals()
        expr = totals["movement_unique"] if metric == "movement" else totals["ops"]
        return self._sweeper(base_env).rank_parameters(expr)

    def _sweeper(self, base_env: Mapping[str, int]) -> ParameterSweep:
        return ParameterSweep(
            base_env,
            metrics_registry=self.pipeline.metrics,
            tracer=self._timings,
        )

    # -- navigation -----------------------------------------------------------
    def outline(self):
        """The hierarchical outline overview."""
        return build_outline(self.sdfg)

    def search(self, query: str):
        """Find graph elements by (case-insensitive) label substring.

        "As with traditional source code, the graphical representation can
        be searched to find specific elements" (Section IV-A).  Returns
        matching outline entries in document order.
        """
        needle = query.lower()
        return [
            entry
            for entry in build_outline(self.sdfg).walk()
            if needle in entry.label.lower()
        ]

    def filter_nodes(self, hide_kinds: Iterable[str]):
        """Nodes remaining visible after hiding element kinds.

        *hide_kinds* uses class names (``"AccessNode"``, ``"Tasklet"``,
        ``"MapEntry"``, ...) — the Section IV-A "filtered out and hidden
        from view" behaviour as an explicit model.
        """
        hidden = set(hide_kinds)
        return [
            node for node in self.state.nodes() if type(node).__name__ not in hidden
        ]

    # -- rendering --------------------------------------------------------------
    def render(
        self,
        env: Mapping[str, int] | None = None,
        edge_overlay: str | None = None,
        node_overlay: str | None = None,
        method: str = "mean",
        show_minimap: bool = True,
        zoom: float = 1.0,
    ) -> str:
        """Render the state as SVG with the requested overlays.

        *zoom* applies the level-of-detail rules; the view's fold state
        (:attr:`folds`) collapses scopes — call ``folds.collapse(entry)``
        or ``folds.collapse_all()`` before rendering.
        """
        edge_hm = node_hm = None
        if edge_overlay == "movement":
            if env is None:
                raise ReproError("movement overlay needs parameter values")
            edge_hm = self.movement_heatmap(env, method=method)
        elif edge_overlay is not None:
            raise ReproError(f"unknown edge overlay {edge_overlay!r}")
        if node_overlay == "ops":
            node_hm = self.opcount_heatmap(env or {})
        elif node_overlay == "intensity":
            node_hm = self.intensity_heatmap(env or {})
        elif node_overlay is not None:
            raise ReproError(f"unknown node overlay {node_overlay!r}")
        return render_state(
            self.state,
            edge_heatmap=edge_hm,
            node_heatmap=node_hm,
            show_minimap=show_minimap,
            folds=self.folds,
            zoom=zoom,
        )


class LocalView:
    """The local view (Section V): parameterized simulation and locality.

    A thin facade: every query resolves through the five chained local
    passes (trace → layout → stack distance → classification → physical
    movement).  Each pipeline product is additionally memoized in the
    session's :class:`SimulationCache` under a key that embeds the
    *content-addressed* pipeline key, so mutating the SDFG makes the
    next query miss and recompute — no explicit invalidation needed.
    """

    def __init__(
        self,
        sdfg: SDFG,
        symbols: Mapping[str, int],
        state: SDFGState,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        cache: SimulationCache | None = None,
        timings=None,
        scope: tuple | None = None,
        pipeline: Pipeline | None = None,
    ):
        self.sdfg = sdfg
        self.state = state
        self.symbols = {k: int(v) for k, v in symbols.items()}
        self.cache = CacheModel(line_size=line_size, capacity_lines=capacity_lines)
        self.include_transients = include_transients
        self.fast = fast
        self.session_cache = cache
        self.timings = timings
        #: Content-based cache-key prefix.  The session passes its
        #: ``(sdfg name, generation)`` scope; standalone views derive one
        #: from the SDFG name alone (they have no shared cache anyway).
        self._scope = scope if scope is not None else (sdfg.name, 0)
        self._pipeline = pipeline if pipeline is not None else build_pipeline()
        self._result: SimulationResult | None = None
        self._memory: MemoryModel | None = None

    # -- shared-cache plumbing ---------------------------------------------------
    def _sim_key(self) -> tuple:
        """``(scope, state label, frozen params, config)`` memoization key.

        Deliberately content-based: an ``id()``-based key can alias two
        different states once CPython recycles the id of a freed one,
        silently serving a stale simulation for a different program.
        """
        return (
            self._scope,
            self.state.name,
            frozenset(self.symbols.items()),
            self.include_transients,
            self.fast,
        )

    def _context(self) -> PassContext:
        return PassContext(
            self.sdfg,
            state=self.state,
            env=self.symbols,
            line_size=self.cache.line_size,
            capacity_lines=self.cache.capacity_lines,
            include_transients=self.include_transients,
            fast=self.fast,
            scope=self._scope,
            timings=self.timings,
            metrics=self._pipeline.metrics,
        )

    def _product(self, product: str, ctx: PassContext | None = None) -> Any:
        """Resolve one pipeline product, memoized in the session cache.

        The session-cache key embeds the pipeline's content key, so a
        graph mutation changes the key and the stale entry is simply
        never addressed again.
        """
        if ctx is None:
            ctx = self._context()
        if self.session_cache is None:
            return self._pipeline.run(product, ctx)
        key = ("pass", product, self._sim_key(), self._pipeline.key(product, ctx))
        value = self.session_cache.get(key)
        if value is None:
            value = self._pipeline.run(product, ctx)
            self.session_cache.put(key, value)
        return value

    # -- simulation (cached) -----------------------------------------------------
    @property
    def result(self) -> SimulationResult:
        if self._result is None:
            self._result = self._product("local.trace")
        return self._result

    @property
    def memory(self) -> MemoryModel:
        if self._memory is None:
            self._memory = self._product("local.layout").memory
        return self._memory

    def _layout(self) -> LayoutProduct:
        return self._product("local.layout")

    def _stackdist(self) -> DistanceProduct:
        return self._product("local.stackdist")

    def _distances(self) -> list[float]:
        """Per-event stack distances over the full interleaved trace."""
        return self._stackdist().as_list()

    def invalidate(self) -> None:
        """Drop cached simulation state (after mutating the SDFG).

        Content-addressed keys make this unnecessary for *content*
        mutations, which new fingerprints pick up automatically; clearing
        is still the right tool when results must be recomputed without
        any content change (e.g. to force fresh timing measurements).
        """
        self._result = None
        self._memory = None
        if self.session_cache is not None:
            self.session_cache.clear()
        self._pipeline.store.clear()

    # -- access patterns ----------------------------------------------------------
    def access_heatmap(self, data: str) -> dict[tuple[int, ...], int]:
        """Flattened access counts per element (Fig. 4b)."""
        return self.result.access_counts(data)

    def playback(self):
        """Iterate animation frames (lists of events per timestep)."""
        return self.result.steps()

    def render_playback_frame(self, step: int, data: str | None = None) -> dict[str, str]:
        """Render the containers with one timestep's accesses highlighted.

        The static equivalent of the "variable speed animation" playback
        (Section V-C): each frame highlights exactly the elements accessed
        at that timestep.  Returns one SVG per container (restrict with
        *data*).
        """
        events = self.result.events_at_step(step)
        if not events:
            raise ReproError(f"no accesses at timestep {step}")
        per_container: dict[str, set[tuple[int, ...]]] = {}
        for event in events:
            per_container.setdefault(event.data, set()).add(event.indices)
        names = [data] if data is not None else sorted(per_container)
        out: dict[str, str] = {}
        for name in names:
            out[name] = self.render_container(
                name, highlights=per_container.get(name, ())
            )
        return out

    def related(self, selections: Sequence[tuple[str, tuple[int, ...]]], data=None):
        """Stacked related-access counts for selected elements (Fig. 4c)."""
        return related_access_counts(self.result, selections, data=data)

    def sliders(self, entry: MapEntry | None = None) -> ParameterSliders:
        """Parameter sliders over a map scope (defaults to the first)."""
        if entry is None:
            entries = self.state.map_entries()
            if not entries:
                raise ReproError("the state has no map scope to parameterize")
            entry = entries[0]
        return ParameterSliders(self.sdfg, self.state, entry, self.symbols)

    # -- locality ----------------------------------------------------------------
    def cache_line_neighbors(self, data: str, indices: tuple[int, ...]):
        """Elements pulled into the cache with ``data[indices]`` (Fig. 5a)."""
        return self.memory.layout(data).neighbors_in_line(
            indices, self.cache.line_size
        )

    def reuse_distances(self, data: str | None = None):
        """Per-element stack-distance lists (Fig. 5b)."""
        layout = self._layout()
        distances = self._stackdist()
        if layout.trace is not None:
            return element_distance_lists(layout.trace, distances.array, data=data)
        return element_stack_distances(
            layout.result.events,
            layout.memory,
            data=data,
            distances=distances.as_list(),
        )

    def reuse_heatmap(self, data: str, stat: str = "median") -> dict[tuple[int, ...], float]:
        """Per-element min/median/max reuse distance (finite values only;
        elements with no finite reuse are omitted)."""
        stats = {"min": min, "max": max, "median": statistics.median}
        if stat not in stats:
            raise ReproError(f"unknown statistic {stat!r}")
        out: dict[tuple[int, ...], float] = {}
        for (name, indices), distances in self.reuse_distances(data).items():
            finite = [d for d in distances if d != float("inf")]
            if finite:
                out[indices] = float(stats[stat](finite))
        return out

    def miss_counts(self, data: str | None = None):
        """Per-container (or one container's per-element) miss counts."""
        if data is None:
            return self._product("local.classify")
        analytic = self._product("local.analytic")
        if analytic is not None:
            with maybe_span(self.timings, "classify"):
                return analytic.per_element_misses(
                    data, self.cache.capacity_lines
                )
        layout = self._layout()
        distances = self._stackdist()
        with maybe_span(self.timings, "classify"):
            if layout.trace is not None:
                return per_element_misses_array(
                    layout.trace, distances.array, self.cache, data
                )
            return per_element_misses(
                layout.result.events,
                layout.memory,
                self.cache,
                data,
                distances.as_list(),
            )

    def miss_heatmap(self, data: str) -> dict[tuple[int, ...], int]:
        """Per-element total misses of one container (Fig. 5c)."""
        return {
            idx: counts.misses for idx, counts in self.miss_counts(data).items()
        }

    def miss_counts_set_associative(self, num_sets: int, ways: int):
        """Per-container misses under a *set-associative* backend.

        The Discussion's "hardware-specific back-end" extension: instead
        of the fully-associative threshold model, simulate an actual
        set-associative LRU cache and attribute cold / capacity / conflict
        misses per container (conflicts are exactly the misses the
        fully-associative assumption ignores).
        """
        from repro.simulation.cache import MissCounts, classify_three_way

        layout = self._layout()
        with maybe_span(self.timings, "classify"):
            kinds = classify_three_way(layout.line_ids(), num_sets, ways)
        if layout.trace is not None:
            with maybe_span(self.timings, "classify"):
                return per_container_outcomes(layout.trace, kinds)
        out: dict[str, MissCounts] = {}
        from repro.simulation.cache import MissKind

        for event, kind in zip(layout.result.events, kinds):
            counts = out.setdefault(event.data, MissCounts())
            if kind is MissKind.HIT:
                counts.hits += 1
            elif kind is MissKind.COLD:
                counts.cold += 1
            elif kind is MissKind.CAPACITY:
                counts.capacity += 1
            else:
                counts.conflict += 1
        return out

    def physical_movement(self) -> dict[str, int]:
        """Estimated bytes moved to/from memory per container (Fig. 7)."""
        return self._product("local.physmove")

    def edge_movement(self):
        """Physical-movement estimate per dataflow edge (Fig. 5c overlay)."""
        container_misses = self.miss_counts()
        with maybe_span(self.timings, "classify"):
            return edge_physical_movement(
                self.state,
                None,
                None,
                self.cache,
                container_misses=container_misses,
            )

    # -- rendering ---------------------------------------------------------------
    def render_container(
        self,
        data: str,
        values: Mapping[tuple[int, ...], float] | None = None,
        highlights: Iterable[tuple[int, ...]] = (),
        selections: Iterable[tuple[int, ...]] = (),
        value_label: str = "accesses",
    ) -> str:
        """Render one container grid with optional heatmap/highlights."""
        return render_container(
            data,
            self.result.shape(data),
            values=values,
            highlights=highlights,
            selections=selections,
            value_label=value_label,
        )

    def render_container_aggregated(
        self,
        data: str,
        values: Mapping[tuple[int, ...], float],
        tile: Sequence[int],
        reduce: str = "sum",
        value_label: str = "accesses",
    ) -> str:
        """Render a full-size container with tile aggregation.

        The Discussion's full-size-parameter extension: simulate at real
        sizes, then merge ``tile``-sized blocks of elements into one
        visual tile so the view stays interpretable.
        """
        from repro.viz.containerview import render_container_aggregated

        return render_container_aggregated(
            data,
            self.result.shape(data),
            values,
            tile,
            reduce=reduce,
            value_label=value_label,
        )

    def render_reuse_histogram(self, data: str, indices: tuple[int, ...]) -> str:
        """The Fig. 5b detail histogram for one selected element."""
        distances = self.reuse_distances(data).get((data, indices))
        if not distances:
            raise ReproError(f"element {data}[{indices}] was never accessed")
        label = f"{data}[{', '.join(map(str, indices))}]"
        return render_histogram(distances, title=f"reuse distances of {label}")
