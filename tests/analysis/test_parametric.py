"""Tests for the parametric scaling analysis."""

import pytest

from repro.analysis import ParameterSweep, evaluate_metrics, total_movement_bytes
from repro.errors import AnalysisError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols

I, J, K = symbols("I J K")


@program
def matmul(A: float64[I, K], B: float64[K, J], C: float64[I, J]):
    for i, j, k in pmap(I, J, K):
        C[i, j] += A[i, k] * B[k, j]


class TestEvaluateMetrics:
    def test_basic(self):
        metrics = {"a": I * J, "b": I + 1}
        values = evaluate_metrics(metrics, {"I": 3, "J": 4})
        assert values == {"a": 12.0, "b": 4.0}

    def test_missing_symbol(self):
        with pytest.raises(AnalysisError, match="'a'"):
            evaluate_metrics({"a": I * J}, {"I": 3})

    def test_reevaluation_changes_values(self):
        sdfg = matmul.to_sdfg()
        total = total_movement_bytes(sdfg)
        small = evaluate_metrics({"t": total}, {"I": 8, "J": 8, "K": 8})["t"]
        large = evaluate_metrics({"t": total}, {"I": 16, "J": 8, "K": 8})["t"]
        assert large == 2 * small


class TestParameterSweep:
    def test_sweep_expression(self):
        sweep = ParameterSweep({"I": 4, "J": 4, "K": 4})
        result = sweep.run("I", [4, 8, 16], I * J * K)
        assert result.values == [64.0, 128.0, 256.0]
        assert result.growth_factors() == [2.0, 2.0]

    def test_sweep_callable(self):
        sweep = ParameterSweep({"I": 2})
        result = sweep.run("I", [1, 2, 3], lambda env: env["I"] ** 2)
        assert result.values == [1.0, 4.0, 9.0]

    def test_sweep_missing_symbol(self):
        sweep = ParameterSweep({})
        with pytest.raises(AnalysisError):
            sweep.run("I", [1], I * J)

    def test_iteration(self):
        sweep = ParameterSweep({"I": 1})
        result = sweep.run("I", [1, 2], I + 0)
        assert list(result) == [(1, 1.0), (2, 2.0)]


class TestParameterRanking:
    def test_identifies_dominant_parameter(self):
        # movement ~ I**2 * J: doubling I quadruples it, doubling J doubles.
        metric = I * I * J
        sweep = ParameterSweep({"I": 8, "J": 8})
        ranking = sweep.rank_parameters(metric)
        assert [name for name, _ in ranking] == ["I", "J"]
        assert ranking[0][1] == pytest.approx(4.0)
        assert ranking[1][1] == pytest.approx(2.0)

    def test_matmul_ranking_ties(self):
        sdfg = matmul.to_sdfg()
        metric = total_movement_bytes(sdfg)
        sweep = ParameterSweep({"I": 8, "J": 8, "K": 8})
        ranking = dict(sweep.rank_parameters(metric))
        # Every parameter doubles the matmul's logical movement.
        assert all(v == pytest.approx(2.0) for v in ranking.values())

    def test_zero_base_rejected(self):
        sweep = ParameterSweep({"I": 0})
        with pytest.raises(AnalysisError):
            sweep.rank_parameters(I * 1)

    def test_missing_base_value(self):
        sweep = ParameterSweep({"I": 4})
        with pytest.raises(AnalysisError):
            sweep.rank_parameters(I * J)
