"""Adaptive serial-vs-pool choice of the sweep executor.

With ``adaptive=True`` the executor times the first grid point serially
and only spawns a worker pool when the measured per-point cost predicts
a wall-clock win over just finishing serially — a cheap grid must never
pay process-pool startup (the regression that made an 8-point sweep
*slower* with workers than without).  Point functions live at module
level so they pickle across process boundaries.
"""

import time

import pytest

from repro.analysis.executor import SweepExecutor
from repro.apps import hdiff
from repro.obs import MetricsRegistry, Tracer


@pytest.fixture(scope="module")
def sdfg():
    return hdiff.build_sdfg()


def _echo_point(sdfg_text, params, *cfg):
    return dict(params)


def _sleepy_point(sdfg_text, params, *cfg):
    time.sleep(params.get("sleep", 0))
    return dict(params)


class TestChoosePool:
    """Unit tests of the cost model, with injected cores and overhead."""

    def make(self, workers=4, cores=4, pool_overhead=0.5):
        return SweepExecutor(
            workers=workers, adaptive=True, cores=cores, pool_overhead=pool_overhead
        )

    def test_expensive_points_choose_pool(self):
        # serial: 4 x 1s = 4s; pool: 0.5 + ceil(4/4) x 1s = 1.5s.
        assert self.make()._choose_pool(1.0, remaining=4) is True

    def test_cheap_points_stay_serial(self):
        # serial: 4 x 10ms = 40ms; pool overhead alone is 0.5s.
        assert self.make()._choose_pool(0.01, remaining=4) is False

    def test_single_core_never_pools(self):
        assert self.make(cores=1)._choose_pool(10.0, remaining=100) is False

    def test_single_worker_never_pools(self):
        assert self.make(workers=1)._choose_pool(10.0, remaining=100) is False

    def test_no_remaining_points_never_pools(self):
        assert self.make()._choose_pool(10.0, remaining=0) is False

    def test_effective_workers_capped_by_remaining(self):
        # 2 remaining on 8 workers: pool = 0.5 + 1s, serial = 2s -> pool;
        # with a 2s overhead the pool can no longer win.
        assert self.make(workers=8)._choose_pool(1.0, remaining=2) is True
        assert self.make(workers=8, pool_overhead=2.0)._choose_pool(
            1.0, remaining=2
        ) is False


class TestAdaptiveRuns:
    def test_cheap_grid_never_spawns_a_pool(self, sdfg):
        metrics = MetricsRegistry()
        tracer = Tracer()
        executor = SweepExecutor(
            workers=4,
            adaptive=True,
            cores=4,
            point_fn=_echo_point,
            metrics=metrics,
            tracer=tracer,
        )
        grid = [{"idx": i} for i in range(8)]
        run = executor.run(sdfg, grid)
        assert run.points == grid  # order preserved, probe included
        counters = metrics.to_dict()["counters"]
        assert counters.get("sweep.pool_spawns", 0) == 0
        assert counters["sweep.adaptive.serial_chosen"] == 1
        assert "sweep.adaptive.pool_chosen" not in counters
        [root] = tracer.spans("sweep.run")
        assert root.attributes["adaptive"] == "serial"
        assert metrics.gauge("sweep.adaptive.point_seconds").value >= 0.0

    def test_expensive_grid_spawns_a_pool(self, sdfg):
        metrics = MetricsRegistry()
        tracer = Tracer()
        executor = SweepExecutor(
            workers=2,
            adaptive=True,
            cores=2,
            pool_overhead=0.05,
            point_fn=_sleepy_point,
            metrics=metrics,
            tracer=tracer,
        )
        grid = [{"idx": i, "sleep": 0.3} for i in range(3)]
        run = executor.run(sdfg, grid)
        assert [p["idx"] for p in run.points] == [0, 1, 2]
        counters = metrics.to_dict()["counters"]
        assert counters["sweep.adaptive.pool_chosen"] == 1
        assert counters["sweep.pool_spawns"] == 1
        [root] = tracer.spans("sweep.run")
        assert root.attributes["adaptive"] == "pool"

    def test_adaptive_off_keeps_unconditional_pool(self, sdfg):
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            workers=2, point_fn=_echo_point, metrics=metrics
        )
        grid = [{"idx": i} for i in range(4)]
        run = executor.run(sdfg, grid)
        assert run.points == grid
        assert metrics.to_dict()["counters"]["sweep.pool_spawns"] == 1


class TestWarmCacheRegression:
    def test_fully_warm_disk_cache_never_spawns_a_pool(self, tmp_path):
        """A re-sweep served entirely from disk must not build a pool."""
        from repro.tool.session import Session

        grid = {"I": [8, 16], "J": [8], "K": [4]}
        warm = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        first = warm.sweep(grid, workers=None)
        assert len(first) == 2

        fresh = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        again = fresh.sweep(grid, workers=4)
        assert again == first
        counters = fresh.metrics.to_dict()["counters"]
        assert counters.get("sweep.pool_spawns", 0) == 0
        assert counters["sweep.cache_hits"] == 2
