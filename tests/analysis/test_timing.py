"""Tests for the stage-timing collector."""

import pytest

from repro.analysis.timing import STAGES, StageTimings, maybe_span


class TestStageTimings:
    def test_add_and_total(self):
        t = StageTimings()
        t.add("evaluate", 0.25)
        t.add("evaluate", 0.75)
        t.add("layout", 0.5)
        assert t.total("evaluate") == pytest.approx(1.0)
        assert t.total() == pytest.approx(1.5)
        assert t.count("evaluate") == 2

    def test_span_records_elapsed(self):
        t = StageTimings()
        with t.span("stackdist"):
            pass
        assert t.count("stackdist") == 1
        assert t.total("stackdist") >= 0.0

    def test_span_records_on_exception(self):
        t = StageTimings()
        with pytest.raises(RuntimeError):
            with t.span("classify"):
                raise RuntimeError("boom")
        assert t.count("classify") == 1

    def test_stage_order_canonical_first(self):
        t = StageTimings()
        t.add("custom", 1.0)
        t.add("enumerate", 1.0)
        t.add("stackdist", 1.0)
        assert t.stages() == ["enumerate", "stackdist", "custom"]
        assert list(STAGES) == [
            "enumerate",
            "evaluate",
            "layout",
            "stackdist",
            "classify",
            "fanout",
            "merge",
        ]

    def test_rows_and_report(self):
        t = StageTimings()
        t.add("evaluate", 0.002)
        rows = t.rows()
        assert rows == [("evaluate", 1, pytest.approx(0.002))]
        assert "evaluate" in t.report()
        assert StageTimings().report() == "no stages recorded"

    def test_reset(self):
        t = StageTimings()
        t.add("layout", 1.0)
        t.reset()
        assert t.stages() == [] and t.total() == 0.0

    def test_maybe_span_none_is_noop(self):
        with maybe_span(None, "evaluate"):
            pass  # must not raise

    def test_maybe_span_records(self):
        t = StageTimings()
        with maybe_span(t, "enumerate"):
            pass
        assert t.count("enumerate") == 1
