"""Tests for movement-volume and operation-count analyses."""

import pytest

from repro.analysis import (
    container_movement_bytes,
    count_expression_ops,
    edge_movement_bytes,
    edge_movement_volumes,
    program_intensity,
    program_ops,
    scope_intensities,
    scope_ops,
    total_movement_bytes,
)
from repro.frontend import pmap, program
from repro.sdfg import MapEntry, Tasklet
from repro.sdfg.dtypes import float32, float64
from repro.symbolic import Integer, symbols

I, J, K = symbols("I J K")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@program
def matmul(A: float64[I, K], B: float64[K, J], C: float64[I, J]):
    for i, j, k in pmap(I, J, K):
        C[i, j] += A[i, k] * B[k, j]


@program
def axpy(x: float32[I], y: float32[I], z: float32[I]):
    for i in pmap(I):
        z[i] = 2.0 * x[i] + y[i]


class TestExpressionOps:
    @pytest.mark.parametrize(
        "code,expected",
        [
            ("_out = a * b", 1),
            ("_out = a * b + c", 2),
            ("_out = -a", 1),
            ("_out = a", 0),
            ("_out = (a + b) * (c + d)", 3),
            ("_out = sqrt(a)", 1),
            ("_out = a if b > c else d", 1),
            ("_out = a ** 2 + exp(b)", 3),
        ],
    )
    def test_counts(self, code, expected):
        assert count_expression_ops(code) == expected

    def test_custom_weights(self):
        assert count_expression_ops("_out = exp(a)", {"exp": 10}) == 10

    def test_bad_code(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            count_expression_ops("_out = ((")


class TestScopeOps:
    def test_outer_product_total(self):
        sdfg = outer_product.to_sdfg()
        assert program_ops(sdfg) == I * J

    def test_matmul_total(self):
        sdfg = matmul.to_sdfg()
        assert program_ops(sdfg) == 2 * I * J * K

    def test_map_entry_aggregates(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        ops = scope_ops(state)
        entry = state.map_entries()[0]
        assert ops[entry] == I * J

    def test_tasklet_scaled_by_iterations(self):
        sdfg = axpy.to_sdfg()
        state = sdfg.start_state
        ops = scope_ops(state)
        tasklet = state.tasklets()[0]
        assert ops[tasklet] == 2 * I


class TestMovement:
    def test_edge_volumes_elements(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        volumes = edge_movement_volumes(state)
        assert len(volumes) == len(list(state.all_memlets()))
        entry = state.map_entries()[0]
        outer = [volumes[e] for e in state.in_edges(entry)]
        assert all(v == I * J for v in outer)

    def test_edge_bytes_respects_itemsize(self):
        sdfg = axpy.to_sdfg()
        state = sdfg.start_state
        by = edge_movement_bytes(sdfg, state)
        entry = state.map_entries()[0]
        for e in state.in_edges(entry):
            assert by[e] == I * 4  # float32

    def test_container_totals(self):
        sdfg = outer_product.to_sdfg()
        moved = container_movement_bytes(sdfg)
        # A and B each read I*J times (8B elements); C written I*J times.
        assert moved["A"] == I * J * 8
        assert moved["B"] == I * J * 8
        assert moved["C"] == I * J * 8

    def test_split_reads_writes(self):
        sdfg = outer_product.to_sdfg()
        moved = container_movement_bytes(sdfg, split_reads_writes=True)
        reads, writes = moved["C"]
        assert reads == Integer(0)
        assert writes == I * J * 8

    def test_total(self):
        sdfg = outer_product.to_sdfg()
        assert total_movement_bytes(sdfg) == 3 * I * J * 8

    def test_no_double_counting_of_inner_edges(self):
        # The total must count container-adjacent edges only, not the
        # per-iteration inner edges again.
        sdfg = matmul.to_sdfg()
        total = total_movement_bytes(sdfg)
        assert total == 3 * I * J * K * 8


class TestIntensity:
    def test_outer_product_intensity(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        intensities = scope_intensities(sdfg, state)
        entry = state.map_entries()[0]
        # 1 op per iteration; 3*8 bytes crossing the scope per iteration.
        value = intensities[entry].evaluate({"I": 16, "J": 16})
        assert value == pytest.approx((16 * 16) / (3 * 16 * 16 * 8))

    def test_matmul_intensity_grows_with_k(self):
        sdfg = matmul.to_sdfg()
        intensity = program_intensity(sdfg)
        small = intensity.evaluate({"I": 8, "J": 8, "K": 8})
        large = intensity.evaluate({"I": 8, "J": 8, "K": 64})
        # Logical movement counts every access, so intensity is constant
        # per access here — this documents the *logical* metric behaviour.
        assert small == pytest.approx(large)

    def test_intensity_positive(self):
        sdfg = axpy.to_sdfg()
        state = sdfg.start_state
        for node, expr in scope_intensities(sdfg, state).items():
            assert expr.evaluate({"I": 64}) > 0
