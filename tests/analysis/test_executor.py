"""Fault-injection tests for the fault-tolerant sweep executor.

The point functions used with worker pools live at module level so they
pickle across process boundaries.  Fault injection is driven through the
parameter dicts themselves (marker/log file paths in ``tmp_path``), which
keeps every scenario deterministic: with ``workers=1`` at most one point
is ever in flight, so kill/retry interleavings cannot race.
"""

import os
import signal
import time

import pytest

from repro.analysis.executor import (
    CancelToken,
    SweepExecutor,
    SweepPointError,
    SweepRun,
)
from repro.analysis.parametric import parameter_grid, sweep_local_views
from repro.apps import hdiff
from repro.errors import AnalysisError, SimulationError
from repro.obs import MetricsRegistry, Tracer

GRID = [{"idx": i} for i in range(4)]


@pytest.fixture(scope="module")
def sdfg():
    return hdiff.build_sdfg()


# -- module-level point functions (picklable) ---------------------------------


def _echo_point(sdfg_text, params, *cfg):
    return dict(params)


def _poison_point(sdfg_text, params, *cfg):
    if params.get("poison"):
        raise AnalysisError(f"bad point {params['idx']}")
    return dict(params)


def _sleepy_point(sdfg_text, params, *cfg):
    time.sleep(params.get("sleep", 0))
    return dict(params)


def _logged_kill_once_point(sdfg_text, params, *cfg):
    """Log every attempt; SIGKILL the worker on the first killer attempt."""
    with open(params["log"], "a") as handle:
        handle.write(f"{params['idx']}\n")
    if params.get("kill"):
        marker = params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("killed once")
            os.kill(os.getpid(), signal.SIGKILL)
    return dict(params)


def _flaky_point(sdfg_text, params, *cfg):
    """Raise a transient OSError on the first attempt of each point."""
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("failed once")
        raise OSError("transient hiccup")
    return dict(params)


# -- SweepRun / SweepPointError data model ------------------------------------


class TestSweepRun:
    def test_partitions_outcomes_in_grid_order(self):
        error = SweepPointError({"idx": 1}, "error", "ValueError", "boom", 1)
        run = SweepRun(GRID[:3], [{"idx": 0}, error, {"idx": 2}])
        assert run.points == [{"idx": 0}, None, {"idx": 2}]
        assert run.errors == [error]
        assert not run.ok
        assert run.completed == 2
        assert len(run) == 3
        assert run[1] is error
        assert list(run) == run.outcomes

    def test_raise_on_error_names_first_failure(self):
        error = SweepPointError({"idx": 1}, "timeout", None, "too slow", 2)
        run = SweepRun(GRID[:2], [{"idx": 0}, error])
        with pytest.raises(AnalysisError, match=r"\{'idx': 1\}.*timeout"):
            run.raise_on_error()
        SweepRun(GRID[:1], [{"idx": 0}]).raise_on_error()  # no-op when ok

    def test_to_dict(self):
        error = SweepPointError({"idx": 0}, "crash", "BrokenProcessPool", "died", 3)
        doc = SweepRun(GRID[:1], [error]).to_dict()
        assert doc["points"] == 1
        assert doc["completed"] == 0
        assert doc["errors"][0]["kind"] == "crash"
        assert doc["errors"][0]["attempts"] == 3

    def test_error_kinds_validated(self):
        with pytest.raises(ValueError):
            SweepPointError({}, "mystery", None, "?", 1)


# -- serial path --------------------------------------------------------------


class TestSerialExecution:
    def test_partial_results_with_poisoned_point(self, sdfg):
        grid = [dict(p, poison=(p["idx"] == 2)) for p in GRID]
        metrics = MetricsRegistry()
        executor = SweepExecutor(point_fn=_poison_point, metrics=metrics)
        run = executor.run(sdfg, grid)
        assert run.completed == 3
        [error] = run.errors
        assert error.kind == "error"
        assert error.error_type == "AnalysisError"
        assert error.params["idx"] == 2
        assert error.attempts == 1  # library errors are never retried
        assert run.points[2] is None
        assert metrics.counter("sweep.failed").value == 1
        assert metrics.counter("sweep.completed").value == 3
        assert metrics.counter("sweep.retries").value == 0

    def test_fail_fast_raises_naming_the_point(self, sdfg):
        grid = [dict(p, poison=(p["idx"] == 1)) for p in GRID]
        executor = SweepExecutor(point_fn=_poison_point)
        with pytest.raises(AnalysisError, match="'idx': 1"):
            executor.run(sdfg, grid, fail_fast=True)

    def test_transient_errors_retry_with_backoff(self, sdfg, tmp_path):
        grid = [
            dict(p, marker=str(tmp_path / f"flaky-{p['idx']}")) for p in GRID
        ]
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            retries=2, backoff=0.001, point_fn=_flaky_point, metrics=metrics
        )
        run = executor.run(sdfg, grid)
        assert run.ok
        assert metrics.counter("sweep.retries").value == len(grid)

    def test_exhausted_retries_become_error_records(self, sdfg):
        def always_fails(sdfg_text, params, *cfg):
            raise OSError("permanently flaky")

        executor = SweepExecutor(retries=1, backoff=0.001, point_fn=always_fails)
        run = executor.run(sdfg, GRID[:2])
        assert [e.kind for e in run.errors] == ["error", "error"]
        assert all(e.attempts == 2 for e in run.errors)  # 1 try + 1 retry

    def test_cancellation_mid_sweep(self, sdfg):
        token = CancelToken()

        def cancel_after_first(index, outcome):
            token.cancel()

        executor = SweepExecutor(point_fn=_echo_point)
        run = executor.run(sdfg, GRID, cancel=token, on_result=cancel_after_first)
        assert run.outcomes[0] == {"idx": 0}
        assert [e.kind for e in run.errors] == ["cancelled"] * 3

    def test_empty_grid(self, sdfg):
        run = SweepExecutor(point_fn=_echo_point).run(sdfg, [])
        assert len(run) == 0 and run.ok


# -- pool path ----------------------------------------------------------------


class TestPoolExecution:
    def test_results_come_back_in_grid_order(self, sdfg):
        grid = [
            {"idx": i, "sleep": 0.2 if i == 0 else 0.0} for i in range(4)
        ]
        executor = SweepExecutor(workers=2, point_fn=_sleepy_point)
        run = executor.run(sdfg, grid)
        assert run.ok
        assert [p["idx"] for p in run.points] == [0, 1, 2, 3]

    def test_poisoned_point_yields_partial_results(self, sdfg):
        grid = [dict(p, poison=(p["idx"] == 2)) for p in GRID]
        executor = SweepExecutor(workers=2, point_fn=_poison_point)
        run = executor.run(sdfg, grid)
        assert run.completed == 3
        [error] = run.errors
        assert error.params["idx"] == 2 and error.kind == "error"

    def test_worker_kill_recovers_and_retries_only_unfinished(self, sdfg, tmp_path):
        log = tmp_path / "attempts.log"
        log.touch()
        grid = [
            {
                "idx": i,
                "kill": i == 1,
                "log": str(log),
                "marker": str(tmp_path / "killed"),
            }
            for i in range(4)
        ]
        metrics = MetricsRegistry()
        # One worker => at most one point in flight, so the kill cannot
        # take completed neighbours down with it.
        executor = SweepExecutor(
            workers=1, retries=2, backoff=0.001,
            point_fn=_logged_kill_once_point, metrics=metrics,
        )
        run = executor.run(sdfg, grid)
        assert run.ok
        assert [p["idx"] for p in run.points] == [0, 1, 2, 3]
        attempts = [int(line) for line in log.read_text().split()]
        # The killer point ran twice (kill + retry); everyone else exactly
        # once — completed points are never recomputed after the respawn.
        assert sorted(attempts) == [0, 1, 1, 2, 3]
        assert metrics.counter("sweep.pool_respawns").value == 1
        assert metrics.counter("sweep.retries").value == 1
        assert metrics.counter("sweep.serial_fallbacks").value == 0

    def test_per_point_timeout_expires(self, sdfg):
        grid = [
            {"idx": i, "sleep": 1.5 if i == 1 else 0.0} for i in range(3)
        ]
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            workers=2, timeout=0.25, point_fn=_sleepy_point, metrics=metrics
        )
        run = executor.run(sdfg, grid)
        [error] = run.errors
        assert error.kind == "timeout"
        assert error.params["idx"] == 1
        assert run.completed == 2
        assert metrics.counter("sweep.timeouts").value == 1

    def test_cancellation_mid_sweep(self, sdfg):
        token = CancelToken()

        def cancel_after_first(index, outcome):
            token.cancel()

        grid = [{"idx": i, "sleep": 0.05} for i in range(6)]
        executor = SweepExecutor(workers=1, point_fn=_sleepy_point)
        run = executor.run(sdfg, grid, cancel=token, on_result=cancel_after_first)
        cancelled = [e for e in run.errors if e.kind == "cancelled"]
        assert run.completed >= 1
        assert cancelled and run.completed + len(cancelled) == len(grid)

    def test_spawn_failure_falls_back_to_serial(self, sdfg, monkeypatch):
        import repro.analysis.executor as executor_module

        def no_pool(*args, **kwargs):
            raise OSError("fork unavailable")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", no_pool)
        metrics = MetricsRegistry()
        executor = SweepExecutor(workers=4, point_fn=_echo_point, metrics=metrics)
        run = executor.run(sdfg, GRID)
        assert run.ok
        assert [p["idx"] for p in run.points] == [0, 1, 2, 3]
        assert metrics.counter("sweep.serial_fallbacks").value == 1

    def test_unpicklable_payload_falls_back_to_serial(self, sdfg, monkeypatch):
        # A payload that cannot pickle surfaces as PicklingError on the
        # future; stub the pool so the scenario is deterministic (a real
        # pool with a dead queue-feeder thread can hang at shutdown).
        import pickle
        from concurrent.futures import Future

        import repro.analysis.executor as executor_module

        class PicklingFailurePool:
            def __init__(self, max_workers):
                pass

            def submit(self, fn, *args):
                future = Future()
                future.set_exception(
                    pickle.PicklingError("payload does not pickle")
                )
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", PicklingFailurePool
        )
        metrics = MetricsRegistry()
        executor = SweepExecutor(workers=2, point_fn=_echo_point, metrics=metrics)
        run = executor.run(sdfg, GRID)
        assert run.ok
        assert [p["idx"] for p in run.points] == [0, 1, 2, 3]
        assert metrics.counter("sweep.serial_fallbacks").value == 1

    def test_single_point_grid_stays_serial(self, sdfg, monkeypatch):
        import repro.analysis.executor as executor_module

        def no_pool(*args, **kwargs):
            raise AssertionError("a 1-point grid must not spawn a pool")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", no_pool)
        run = SweepExecutor(workers=4, point_fn=_echo_point).run(sdfg, GRID[:1])
        assert run.ok and run.points == [{"idx": 0}]


# -- observability ------------------------------------------------------------


class TestObservability:
    def test_point_spans_and_latency_histogram(self, sdfg):
        tracer = Tracer()
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            point_fn=_echo_point, tracer=tracer, metrics=metrics
        )
        executor.run(sdfg, GRID)
        [root] = tracer.spans("sweep.run")
        assert root.attributes["points"] == 4
        points = tracer.spans("sweep.point")
        assert len(points) == 4
        assert all(p.parent_id == root.span_id for p in points)
        assert sorted(p.attributes["index"] for p in points) == [0, 1, 2, 3]
        assert metrics.histogram("sweep.point_seconds").count == 4

    def test_failed_point_span_records_error(self, sdfg):
        tracer = Tracer()
        grid = [dict(p, poison=(p["idx"] == 0)) for p in GRID[:2]]
        SweepExecutor(point_fn=_poison_point, tracer=tracer).run(sdfg, grid)
        failed = [s for s in tracer.spans("sweep.point") if s.status == "error"]
        assert len(failed) == 1
        assert failed[0].attributes["kind"] == "error"
        assert "bad point 0" in failed[0].error


# -- the silent-fallback bugfix: sweep_local_views ----------------------------


class TestSweepLocalViewsContract:
    def test_poisoned_grid_fails_fast_and_names_the_point(self, sdfg, monkeypatch):
        """Regression: a library error used to silently re-run the whole
        grid serially; now it propagates naming the failing point, and
        evaluation stops there instead of re-running everything."""
        from repro.analysis import parametric

        calls = []
        real = parametric._evaluate_point

        def counting_poison(sdfg_arg, params, *args, **kwargs):
            calls.append(dict(params))
            if params["I"] == 4:
                raise SimulationError(f"injected failure at {dict(params)}")
            return real(sdfg_arg, params, *args, **kwargs)

        monkeypatch.setattr(parametric, "_evaluate_point", counting_poison)
        grid = parameter_grid({"I": [3, 4, 5], "J": [3], "K": [2]})
        with pytest.raises(AnalysisError, match="'I': 4"):
            sweep_local_views(sdfg, grid)
        # Points up to and including the poisoned one ran; nothing after.
        assert [c["I"] for c in calls] == [3, 4]

    def test_real_pipeline_error_names_the_point(self, sdfg):
        # The second point misses the K symbol entirely: a deterministic
        # SimulationError, not a reason to fall back to anything.
        grid = [{"I": 3, "J": 3, "K": 2}, {"I": 3, "J": 3}]
        with pytest.raises(AnalysisError, match="'I': 3"):
            sweep_local_views(sdfg, grid)

    def test_real_pipeline_error_in_pool_mode(self, sdfg):
        grid = [
            {"I": 3, "J": 3, "K": 2},
            {"I": 3, "J": 3},
            {"I": 4, "J": 3, "K": 2},
        ]
        with pytest.raises(AnalysisError):
            sweep_local_views(sdfg, grid, workers=2)


def _timed_kill_once_point(sdfg_text, params, *cfg):
    """Log (idx, wall time) per attempt; SIGKILL on the first killer try."""
    with open(params["log"], "a") as handle:
        handle.write(f"{params['idx']} {time.time()}\n")
    if params.get("kill"):
        marker = params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("killed once")
            os.kill(os.getpid(), signal.SIGKILL)
    return dict(params)


class TestCrashRetryBackoff:
    def test_crash_retry_waits_out_the_backoff(self, sdfg, tmp_path):
        """A pool crash retries like a transient error: after a backoff.

        Regression for the crash path resubmitting the killed point
        immediately — with ``workers=1`` the attempt log gives exact
        per-attempt timestamps, so the delay between the two attempts of
        the killer point must show the configured backoff, while every
        other point runs exactly once on the respawned pool.
        """
        log = tmp_path / "attempts.log"
        log.touch()
        backoff = 0.4
        grid = [
            {
                "idx": i,
                "kill": i == 1,
                "log": str(log),
                "marker": str(tmp_path / "killed"),
            }
            for i in range(3)
        ]
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            workers=1, retries=2, backoff=backoff,
            point_fn=_timed_kill_once_point, metrics=metrics,
        )
        run = executor.run(sdfg, grid)
        assert run.ok
        assert [p["idx"] for p in run.points] == [0, 1, 2]

        attempts: dict[int, list[float]] = {}
        for line in log.read_text().splitlines():
            idx, stamp = line.split()
            attempts.setdefault(int(idx), []).append(float(stamp))
        # Crash on attempt 1, success on attempt 2 — nobody else reran.
        assert sorted(len(stamps) for stamps in attempts.values()) == [1, 1, 2]
        first, second = sorted(attempts[1])
        # The resubmission waited out the (first-retry) backoff.  Allow
        # generous slack below the nominal value: the attempt timestamp
        # is taken at worker entry, not at resubmission.
        assert second - first >= backoff * 0.6
        assert metrics.counter("sweep.pool_respawns").value == 1
        assert metrics.counter("sweep.retries").value == 1


def _brittle_point(sdfg_text, params, *cfg):
    """Raise a non-library error for marked points (fails its whole chunk)."""
    if params.get("brittle"):
        raise ValueError(f"chunk-killer {params['idx']}")
    return dict(params)


class TestBatchedExecution:
    """Chunked worker tasks: identical outcomes, fewer pool round-trips."""

    def test_auto_batching_matches_per_point_results(self, sdfg):
        grid = [{"idx": i} for i in range(24)]
        batched_metrics = MetricsRegistry()
        batched = SweepExecutor(
            workers=2, point_fn=_echo_point, metrics=batched_metrics
        ).run(sdfg, grid)
        per_point_metrics = MetricsRegistry()
        per_point = SweepExecutor(
            workers=2, batch=1, point_fn=_echo_point, metrics=per_point_metrics
        ).run(sdfg, grid)
        assert batched.ok and per_point.ok
        assert batched.points == per_point.points
        # 24 points / (2 workers * 4) = chunks of 3.
        assert batched_metrics.counter("sweep.batch.chunks").value == 8
        assert batched_metrics.counter("sweep.batch.points").value == 24
        assert per_point_metrics.counter("sweep.batch.chunks").value == 24

    def test_explicit_batch_size(self, sdfg):
        grid = [{"idx": i} for i in range(32)]
        metrics = MetricsRegistry()
        run = SweepExecutor(
            workers=2, batch=8, point_fn=_echo_point, metrics=metrics
        ).run(sdfg, grid)
        assert run.ok
        assert metrics.counter("sweep.batch.chunks").value == 4

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(batch=0)

    def test_library_error_isolated_inside_chunk(self, sdfg):
        """A ReproError poisons only its own point, not its chunk-mates."""
        grid = [{"idx": i, "poison": i == 5} for i in range(12)]
        metrics = MetricsRegistry()
        run = SweepExecutor(
            workers=2, batch=6, point_fn=_poison_point, metrics=metrics
        ).run(sdfg, grid)
        assert len(run.errors) == 1
        assert run.errors[0].params["idx"] == 5
        assert run.errors[0].error_type == "AnalysisError"
        assert sum(p is not None for p in run.points) == 11
        # No chunk was torn down: the error was captured point-locally.
        assert metrics.counter("sweep.batch.splits").value == 0

    def test_wholesale_chunk_failure_splits_into_singletons(self, sdfg):
        """A non-library chunk failure re-runs members alone, isolating
        the bad point without losing its chunk-mates."""
        grid = [{"idx": i, "brittle": i == 3} for i in range(8)]
        metrics = MetricsRegistry()
        run = SweepExecutor(
            workers=2, batch=4, retries=0,
            point_fn=_brittle_point, metrics=metrics,
        ).run(sdfg, grid)
        assert metrics.counter("sweep.batch.splits").value >= 1
        assert len(run.errors) == 1
        assert run.errors[0].params["idx"] == 3
        assert run.errors[0].error_type == "ValueError"
        good = [p for p in run.points if p is not None]
        assert sorted(p["idx"] for p in good) == [0, 1, 2, 4, 5, 6, 7]
