"""Tests for the local-view parametric sweep engine."""

import os
import pickle

import pytest

from repro.analysis.executor import CancelToken, SweepRun
from repro.analysis.parametric import (
    LocalSweepPoint,
    parameter_grid,
    sweep_local_views,
)
from repro.apps import hdiff
from repro.errors import AnalysisError, ReproError
from repro.tool.session import Session

GRID_SPEC = {"I": [3, 4], "J": [3, 4], "K": [2, 3]}  # 8 points


@pytest.fixture(scope="module")
def sdfg():
    return hdiff.build_sdfg()


class TestParameterGrid:
    def test_cross_product_order(self):
        grid = parameter_grid({"I": [8, 16], "J": [4]})
        assert grid == [{"I": 8, "J": 4}, {"I": 16, "J": 4}]

    def test_last_axis_varies_fastest(self):
        grid = parameter_grid({"A": [0, 1], "B": [5, 6]})
        assert [g["B"] for g in grid] == [5, 6, 5, 6]

    def test_empty_spec(self):
        assert parameter_grid({}) == [{}]


class TestSweepLocalViews:
    def test_serial_sweep_matches_local_view(self, sdfg):
        grid = parameter_grid(GRID_SPEC)
        points = sweep_local_views(sdfg, grid, capacity_lines=16)
        assert [p.params for p in points] == grid
        # Differential: each point equals the session's own pipeline.
        session = Session(sdfg)
        for point in points:
            lv = session.local_view(point.params, capacity_lines=16)
            assert point.misses == lv.miss_counts()
            assert point.moved_bytes == lv.physical_movement()
            assert point.total_accesses == lv.result.num_events
            assert point.seconds >= 0

    def test_parallel_equals_serial(self, sdfg):
        grid = parameter_grid(GRID_SPEC)
        serial = sweep_local_views(sdfg, grid, capacity_lines=16)
        parallel = sweep_local_views(sdfg, grid, workers=4, capacity_lines=16)
        assert parallel == serial
        assert [p.params for p in parallel] == grid

    def test_interpreter_path_agrees(self, sdfg):
        grid = [{"I": 3, "J": 3, "K": 2}]
        fast = sweep_local_views(sdfg, grid, fast=True)
        slow = sweep_local_views(sdfg, grid, fast=False)
        assert fast[0] == slow[0]

    def test_point_is_picklable(self, sdfg):
        point = sweep_local_views(sdfg, [{"I": 3, "J": 3, "K": 2}])[0]
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.total_misses == point.total_misses
        assert clone.total_moved_bytes == point.total_moved_bytes


class TestSessionSweep:
    def test_mapping_expands_to_grid(self, sdfg):
        session = Session(sdfg)
        points = session.sweep(GRID_SPEC, capacity_lines=16)
        assert len(points) == 8
        assert [p.params for p in points] == parameter_grid(GRID_SPEC)

    def test_explicit_point_list(self, sdfg):
        session = Session(sdfg)
        grid = [{"I": 3, "J": 3, "K": 2}, {"I": 4, "J": 4, "K": 3}]
        points = session.sweep(grid)
        assert [p.params for p in points] == grid

    def test_resweep_hits_cache(self, sdfg):
        session = Session(sdfg)
        first = session.sweep(GRID_SPEC, capacity_lines=16)
        hits_before = session.cache.hits
        second = session.sweep(GRID_SPEC, capacity_lines=16)
        assert session.cache.hits - hits_before == len(first)
        assert all(a is b for a, b in zip(first, second))

    def test_refined_grid_only_pays_for_new_points(self, sdfg):
        session = Session(sdfg, cache_size=64)
        session.sweep({"I": [3], "J": [3], "K": [2]})
        misses_before = session.cache.misses
        session.sweep({"I": [3, 4], "J": [3], "K": [2]})
        assert session.cache.misses - misses_before == 1  # only I=4 is new

    def test_config_is_part_of_the_key(self, sdfg):
        session = Session(sdfg, cache_size=64)
        small = session.sweep({"I": [3], "J": [3], "K": [2]}, capacity_lines=2)
        large = session.sweep({"I": [3], "J": [3], "K": [2]}, capacity_lines=4096)
        assert small[0].total_misses > large[0].total_misses

    def test_fanout_and_merge_timed(self, sdfg):
        session = Session(sdfg)
        session.sweep({"I": [3], "J": [3], "K": [2]})
        assert session.timings.count("fanout") == 1
        assert session.timings.count("merge") == 1

    @pytest.mark.skipif(
        not os.cpu_count() or os.cpu_count() < 2,
        reason="parallel speedup needs multiple cores",
    )
    def test_parallel_sweep_usable_from_session(self, sdfg):
        session = Session(sdfg)
        points = session.sweep(GRID_SPEC, workers=2, capacity_lines=16)
        assert len(points) == 8


class TestSessionSweepFaultTolerance:
    BAD_GRID = [
        {"I": 3, "J": 3, "K": 2},
        {"I": 3, "J": 3},  # K missing: deterministic SimulationError
        {"I": 4, "J": 3, "K": 2},
    ]

    def test_raise_mode_names_the_failing_point(self, sdfg):
        session = Session(sdfg)
        with pytest.raises(AnalysisError, match="'I': 3"):
            session.sweep(self.BAD_GRID)

    def test_record_mode_returns_partial_results(self, sdfg):
        session = Session(sdfg)
        run = session.sweep(self.BAD_GRID, on_error="record")
        assert isinstance(run, SweepRun)
        assert run.completed == 2
        [error] = run.errors
        assert error.params == {"I": 3, "J": 3}
        assert error.kind == "error"
        assert error.error_type == "SimulationError"
        # Grid order is preserved around the failure.
        assert run.points[0].params == self.BAD_GRID[0]
        assert run.points[1] is None
        assert run.points[2].params == self.BAD_GRID[2]

    def test_completed_points_cached_across_a_failure(self, sdfg):
        """Re-sweeping after a partial failure never re-runs completed
        points: only the failed point is evaluated again."""
        session = Session(sdfg)
        session.sweep(self.BAD_GRID, on_error="record")
        misses_before = session.cache.misses
        run = session.sweep(self.BAD_GRID, on_error="record")
        assert session.cache.misses - misses_before == 1  # only the bad point
        assert run.completed == 2

    def test_raise_mode_still_caches_the_good_points(self, sdfg):
        session = Session(sdfg)
        with pytest.raises(AnalysisError):
            session.sweep(self.BAD_GRID)
        misses_before = session.cache.misses
        good = [p for p in self.BAD_GRID if "K" in p]
        points = session.sweep(good)
        assert session.cache.misses == misses_before  # all served from cache
        assert [p.params for p in points] == good

    def test_unknown_on_error_mode_rejected(self, sdfg):
        with pytest.raises(ReproError):
            Session(sdfg).sweep(GRID_SPEC, on_error="ignore")

    def test_cancellation_marks_remaining_points(self, sdfg):
        session = Session(sdfg)
        token = CancelToken()
        token.cancel()  # cancelled before the sweep even starts
        run = session.sweep(GRID_SPEC, on_error="record", cancel=token)
        assert run.completed == 0
        assert all(e.kind == "cancelled" for e in run.errors)


class TestSessionSweepObservability:
    def test_trace_spans_cover_the_sweep(self, sdfg):
        session = Session(sdfg)
        session.sweep({"I": [3, 4], "J": [3], "K": [2]})
        [sweep_span] = session.tracer.spans("sweep")
        assert sweep_span.attributes == {"points": 2}
        [fanout] = session.tracer.spans("fanout")
        assert fanout.parent_id == sweep_span.span_id
        assert session.tracer.count("sweep.point") == 2
        # The flat StageTimings mirror keeps working alongside the tree.
        assert session.timings.count("fanout") == 1

    def test_metrics_count_points_and_cache_hits(self, sdfg):
        session = Session(sdfg)
        grid = {"I": [3, 4], "J": [3], "K": [2]}
        session.sweep(grid)
        session.sweep(grid)  # second run: all points from cache
        counters = session.metrics.to_dict()["counters"]
        assert counters["sweep.points"] == 2  # only uncached points dispatched
        assert counters["sweep.completed"] == 2
        assert counters["sweep.cache_hits"] == 2
        assert session.metrics.to_dict()["gauges"]["cache.entries"] >= 2

    def test_exports_write_valid_json(self, sdfg, tmp_path):
        import json

        session = Session(sdfg)
        session.sweep({"I": [3], "J": [3], "K": [2]})
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        session.export_trace(str(trace_path))
        session.export_metrics(str(metrics_path))
        trace = json.loads(trace_path.read_text())
        assert any(s["name"] == "sweep" for s in trace["spans"])
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["sweep.points"] == 1
        assert metrics["histograms"]["sweep.point_seconds"]["count"] == 1
