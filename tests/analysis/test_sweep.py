"""Tests for the local-view parametric sweep engine."""

import os
import pickle

import pytest

from repro.analysis.parametric import (
    LocalSweepPoint,
    parameter_grid,
    sweep_local_views,
)
from repro.apps import hdiff
from repro.tool.session import Session

GRID_SPEC = {"I": [3, 4], "J": [3, 4], "K": [2, 3]}  # 8 points


@pytest.fixture(scope="module")
def sdfg():
    return hdiff.build_sdfg()


class TestParameterGrid:
    def test_cross_product_order(self):
        grid = parameter_grid({"I": [8, 16], "J": [4]})
        assert grid == [{"I": 8, "J": 4}, {"I": 16, "J": 4}]

    def test_last_axis_varies_fastest(self):
        grid = parameter_grid({"A": [0, 1], "B": [5, 6]})
        assert [g["B"] for g in grid] == [5, 6, 5, 6]

    def test_empty_spec(self):
        assert parameter_grid({}) == [{}]


class TestSweepLocalViews:
    def test_serial_sweep_matches_local_view(self, sdfg):
        grid = parameter_grid(GRID_SPEC)
        points = sweep_local_views(sdfg, grid, capacity_lines=16)
        assert [p.params for p in points] == grid
        # Differential: each point equals the session's own pipeline.
        session = Session(sdfg)
        for point in points:
            lv = session.local_view(point.params, capacity_lines=16)
            assert point.misses == lv.miss_counts()
            assert point.moved_bytes == lv.physical_movement()
            assert point.total_accesses == lv.result.num_events
            assert point.seconds >= 0

    def test_parallel_equals_serial(self, sdfg):
        grid = parameter_grid(GRID_SPEC)
        serial = sweep_local_views(sdfg, grid, capacity_lines=16)
        parallel = sweep_local_views(sdfg, grid, workers=4, capacity_lines=16)
        assert parallel == serial
        assert [p.params for p in parallel] == grid

    def test_interpreter_path_agrees(self, sdfg):
        grid = [{"I": 3, "J": 3, "K": 2}]
        fast = sweep_local_views(sdfg, grid, fast=True)
        slow = sweep_local_views(sdfg, grid, fast=False)
        assert fast[0] == slow[0]

    def test_point_is_picklable(self, sdfg):
        point = sweep_local_views(sdfg, [{"I": 3, "J": 3, "K": 2}])[0]
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.total_misses == point.total_misses
        assert clone.total_moved_bytes == point.total_moved_bytes


class TestSessionSweep:
    def test_mapping_expands_to_grid(self, sdfg):
        session = Session(sdfg)
        points = session.sweep(GRID_SPEC, capacity_lines=16)
        assert len(points) == 8
        assert [p.params for p in points] == parameter_grid(GRID_SPEC)

    def test_explicit_point_list(self, sdfg):
        session = Session(sdfg)
        grid = [{"I": 3, "J": 3, "K": 2}, {"I": 4, "J": 4, "K": 3}]
        points = session.sweep(grid)
        assert [p.params for p in points] == grid

    def test_resweep_hits_cache(self, sdfg):
        session = Session(sdfg)
        first = session.sweep(GRID_SPEC, capacity_lines=16)
        hits_before = session.cache.hits
        second = session.sweep(GRID_SPEC, capacity_lines=16)
        assert session.cache.hits - hits_before == len(first)
        assert all(a is b for a, b in zip(first, second))

    def test_refined_grid_only_pays_for_new_points(self, sdfg):
        session = Session(sdfg, cache_size=64)
        session.sweep({"I": [3], "J": [3], "K": [2]})
        misses_before = session.cache.misses
        session.sweep({"I": [3, 4], "J": [3], "K": [2]})
        assert session.cache.misses - misses_before == 1  # only I=4 is new

    def test_config_is_part_of_the_key(self, sdfg):
        session = Session(sdfg, cache_size=64)
        small = session.sweep({"I": [3], "J": [3], "K": [2]}, capacity_lines=2)
        large = session.sweep({"I": [3], "J": [3], "K": [2]}, capacity_lines=4096)
        assert small[0].total_misses > large[0].total_misses

    def test_fanout_and_merge_timed(self, sdfg):
        session = Session(sdfg)
        session.sweep({"I": [3], "J": [3], "K": [2]})
        assert session.timings.count("fanout") == 1
        assert session.timings.count("merge") == 1

    @pytest.mark.skipif(
        not os.cpu_count() or os.cpu_count() < 2,
        reason="parallel speedup needs multiple cores",
    )
    def test_parallel_sweep_usable_from_session(self, sdfg):
        session = Session(sdfg)
        points = session.sweep(GRID_SPEC, workers=2, capacity_lines=16)
        assert len(points) == 8
