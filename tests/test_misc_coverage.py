"""Unit tests for smaller API surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.symbolic import (
    Integer,
    Subset,
    div,
    parse_expr,
    pow_,
    smax,
    smin,
    symbols,
    sympify,
)

I, J = symbols("I J")

from repro.frontend import pmap, program  # noqa: E402
from repro.sdfg.dtypes import float64  # noqa: E402


@program
def _tiny_program(A: float64[I], B: float64[I]):
    for i in pmap(I):
        B[i] = A[i]


class TestExprMisc:
    def test_atoms(self):
        e = (I + 2) * J
        atoms = e.atoms()
        assert I in atoms and J in atoms
        assert Integer(2) in atoms

    def test_children(self):
        e = I + J
        assert set(e.children()) == {I, J}
        assert I.children() == ()

    def test_div_evaluate(self):
        assert div(I, J).evaluate({"I": 7, "J": 2}) == 3.5

    def test_pow_sign(self):
        assert pow_(I, J).is_nonnegative() is True

    def test_min_max_signs(self):
        assert smin(I, J).is_nonnegative() is True
        assert smax(-1 * I, J).is_nonnegative() is True

    def test_mod_sign(self):
        assert (I % 4).is_nonnegative() is True

    def test_repr_contains_str(self):
        assert "I" in repr(I + 1)

    def test_parse_rejects_keyword_args(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_expr("Min(a, b=2)")

    def test_parse_rejects_non_string(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_expr(42)  # type: ignore[arg-type]

    def test_sympify_fraction(self):
        from fractions import Fraction

        assert sympify(Fraction(4, 2)) == Integer(2)
        assert sympify(Fraction(1, 2)).evaluate() == 0.5


class TestSubsetMisc:
    def test_full_scalar_shape(self):
        s = Subset.full([])
        assert s.dims == 0
        assert s.num_elements() == Integer(1)

    def test_repr(self):
        assert "0:I" in repr(Subset.from_string("0:I"))


class TestDtypesMisc:
    def test_from_numpy_unknown(self):
        from repro.sdfg import dtypes

        with pytest.raises(ReproError):
            dtypes.from_numpy(np.dtype([("a", np.int32)]))  # structured

    def test_repr(self):
        from repro.sdfg import dtypes

        assert repr(dtypes.float32) == "float32"


class TestMemletMisc:
    def test_free_symbols_include_hint(self):
        from repro.sdfg import Memlet

        m = Memlet("A", "0:4", volume_hint=I * 2)
        assert "I" in m.free_symbols()

    def test_simple_constructor(self):
        from repro.sdfg import Memlet

        m = Memlet.simple("A", "i, j", wcr="sum")
        assert m.wcr == "sum"
        assert m.subset.dims == 2


class TestViewportMisc:
    def test_contains(self):
        from repro.viz.overview import Viewport

        vp = Viewport(10, 10, 100, 50)
        assert vp.contains(50, 30)
        assert not vp.contains(0, 0)
        assert vp.center == (60.0, 35.0)

    def test_partial_viewport_fraction(self):
        from repro.viz.overview import Minimap, Viewport

        state = _tiny_program.to_sdfg().start_state
        mm = Minimap(state, Viewport(0, 0, 50, 50))
        fx, fy = mm.viewport_fraction()
        assert 0 < fx < 1 and 0 < fy < 1


class TestInterstateEdgeRepr:
    def test_repr(self):
        from repro.sdfg import InterstateEdge

        edge = InterstateEdge(condition="i < N", assignments={"i": "i + 1"})
        text = repr(edge)
        assert "i < N" in text and "i + 1" in text


class TestMapMisc:
    def test_range_of_unknown_param(self):
        from repro.sdfg import Map
        from repro.symbolic import Range

        m = Map("m", ["i"], [Range(0, 3)])
        with pytest.raises(ReproError):
            m.range_of("z")

    def test_duplicate_params_rejected(self):
        from repro.sdfg import Map
        from repro.symbolic import Range

        with pytest.raises(ReproError):
            Map("m", ["i", "i"], [Range(0, 1), Range(0, 1)])

    def test_subs(self):
        from repro.sdfg import Map
        from repro.symbolic import Range

        m = Map("m", ["i"], [Range(0, I - 1)]).subs({"I": 5})
        assert m.ranges[0].size() == 5


class TestReportEscaping:
    def test_svg_not_escaped_but_captions_are(self):
        from repro.viz.report import ReportBuilder

        report = ReportBuilder("t")
        report.add_svg("<svg xmlns='x'></svg>", caption="a < b & c")
        html_text = report.render()
        assert "<svg xmlns='x'></svg>" in html_text
        assert "a &lt; b &amp; c" in html_text


class TestCLILocalOnly:
    def test_local_view_without_global_params(self, tmp_path):
        from repro.tool.cli import main as cli_main
        from tests.tool.test_session_cli import TestCLI

        module = tmp_path / "m.py"
        module.write_text(TestCLI.PROGRAM_SOURCE)
        out = tmp_path / "o.html"
        rc = cli_main([str(module), "--local", "I=2,J=2", "-o", str(out)])
        assert rc == 0
        assert "Local view" in out.read_text()
