"""Differential tests: analytic locality engine vs. exact enumeration.

The engine's contract is *exact* equality with the enumeration pipeline
(simulate → line trace → stack distances → classify) at every size where
enumeration is feasible — including sizes where the closed-form fold
engages, where the result must stay indistinguishable from brute force.
Every test computes both sides and compares miss counts, reuse-distance
histograms, cold counts, and per-element heatmaps.
"""

import numpy as np
import pytest

from repro.apps import bert, conv, hdiff, linalg
from repro.locality import analyze_locality
from repro.sdfg import dtypes
from repro.sdfg.memlet import Memlet
from repro.sdfg.sdfg import SDFG
from repro.simulation import MemoryModel, simulate_state
from repro.simulation.arrays import (
    build_array_trace,
    per_container_misses_array,
    per_element_misses_array,
)
from repro.simulation.cache import CacheModel
from repro.simulation.movement import per_container_misses, per_element_misses
from repro.simulation.stackdist import stack_distances_array

#: A tiny and a realistic modeled cache — classification must agree at both.
CAPACITIES = (4, 512)
LINE = 64


def enumeration_reference(sdfg, env):
    """The exact pipeline the engine must reproduce."""
    result = simulate_state(sdfg, env)
    memory = MemoryModel(sdfg, env, line_size=LINE)
    trace = build_array_trace(result, memory)
    assert trace is not None, "reference requires the vectorized trace"
    distances = stack_distances_array(trace.lines)
    return trace, distances


def reference_histograms(trace, distances):
    """Per-container finite-distance histograms and cold counts."""
    hists, cold = {}, {}
    for container, name in enumerate(trace.containers):
        d = distances[trace.container_ids == container]
        finite = d[np.isfinite(d)].astype(np.int64)
        values, counts = np.unique(finite, return_counts=True)
        hists[name] = {int(v): int(c) for v, c in zip(values, counts)}
        cold[name] = int(np.sum(~np.isfinite(d)))
    return hists, cold


def assert_engine_exact(sdfg, env, per_element=True):
    """Assert the engine equals enumeration on every observable product."""
    trace, distances = enumeration_reference(sdfg, env)
    analytic = analyze_locality(sdfg, env, line_size=LINE)

    assert analytic.total_events == trace.num_events
    assert sorted(analytic.containers) == sorted(trace.containers)
    per_container = np.bincount(
        trace.container_ids, minlength=len(trace.containers)
    )
    assert analytic.events_per_container == {
        name: int(per_container[i]) for i, name in enumerate(trace.containers)
    }

    ref_hists, ref_cold = reference_histograms(trace, distances)
    assert analytic.cold_misses() == ref_cold
    for name in analytic.containers:
        assert analytic.histogram(name) == ref_hists[name], name

    for capacity in CAPACITIES:
        model = CacheModel(LINE, capacity)
        assert analytic.miss_counts(capacity) == per_container_misses_array(
            trace, distances, model
        )
        if per_element:
            for name in analytic.containers:
                assert analytic.per_element_misses(
                    name, capacity
                ) == per_element_misses_array(trace, distances, model, name), name
    return analytic


class TestExampleApps:
    """All four paper applications, at enumeration-feasible sizes."""

    def test_hdiff(self):
        analytic = assert_engine_exact(hdiff.build_sdfg(), {"I": 4, "J": 4, "K": 3})
        assert analytic.complete

    def test_conv(self):
        assert_engine_exact(
            conv.build_conv(),
            {"Cout": 2, "Cin": 2, "H": 7, "W": 7, "KY": 3, "KX": 3},
        )

    def test_linalg_outer_product(self):
        assert_engine_exact(linalg.build_outer_product(), {"M": 6, "N": 6})

    def test_linalg_matmul(self):
        assert_engine_exact(linalg.build_matmul(), {"I": 4, "J": 4, "K": 4})

    def test_bert_multi_region_stitching(self):
        """bert decomposes into dozens of regions; the cross-region
        composition must resolve region-first accesses exactly."""
        analytic = assert_engine_exact(
            bert.build_sdfg(),
            {"B": 1, "H": 2, "SM": 4, "EMB": 8, "FF": 8, "P": 4},
            per_element=False,  # covered per-app above; bert has many arrays
        )
        assert analytic.analytic_regions + analytic.fallback_regions > 10


class TestFoldEngagement:
    """Sizes where the closed-form window fold actually fires."""

    HDIFF_FOLD = {"I": 64, "J": 16, "K": 8}

    def test_hdiff_folds_and_stays_exact(self):
        analytic = assert_engine_exact(hdiff.build_sdfg(), dict(self.HDIFF_FOLD))
        assert analytic.analytic_regions == 1
        assert analytic.fallback_regions == 0
        assert analytic.symbolic is not None

    def test_hdiff_symbolic_metadata(self):
        analytic = analyze_locality(hdiff.build_sdfg(), dict(self.HDIFF_FOLD))
        symbolic = analytic.symbolic
        assert symbolic.outer_param == "i"
        assert symbolic.valid_from <= self.HDIFF_FOLD["I"]
        assert set(symbolic.total) == set(analytic.containers)
        assert set(symbolic.cold) == set(analytic.containers)

    def test_synthetic_stencil_folds(self):
        sdfg = stencil_1d(600)
        analytic = assert_engine_exact(sdfg, {})
        assert analytic.analytic_regions == 1

    def test_declined_fold_falls_back_exactly(self):
        # matmul's inner extents make the fold uneconomic; the engine
        # must decline and enumerate, still exact.
        analytic = assert_engine_exact(
            linalg.build_matmul(), {"I": 32, "J": 8, "K": 8}
        )
        assert analytic.analytic_regions == 0
        assert analytic.fallback_regions >= 1


def stencil_1d(n):
    """A 1-D three-point stencil with a large outer extent — the shape
    of nest the window fold is designed for.  Array sizes are rounded up
    to whole cache lines so the two allocations do not share a line
    (shared lines merge containers into one sweep group whose diameter
    exceeds the window cap, correctly declining the fold)."""
    size = ((n + 3 + 7) // 8) * 8  # 8 float64 per 64-byte line
    sdfg = SDFG("stencil1d")
    sdfg.add_array("A", [size], dtypes.float64)
    sdfg.add_array("B", [size], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "stencil",
        {"i": f"0:{n}"},
        inputs={"a": Memlet("A", "i:i+3")},
        code="out = a",
        outputs={"out": Memlet("B", "i")},
    )
    return sdfg


def nonaffine_sdfg():
    sdfg = SDFG("nonaffine")
    sdfg.add_array("A", [64, 64], dtypes.float64)
    sdfg.add_array("B", [64, 64], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "compute",
        {"i": "0:6", "j": "0:4"},
        inputs={"a": Memlet("A", "i*i, j")},
        code="out = a",
        outputs={"out": Memlet("B", "i, j")},
    )
    return sdfg


class TestFallbacks:
    """Non-affine and interpreter-path regions fall back per-region to
    exact enumeration, stitched into the same products."""

    def test_nonaffine_subset_falls_back(self):
        sdfg = nonaffine_sdfg()
        analytic = analyze_locality(sdfg, {})
        assert analytic.analytic_regions == 0
        assert analytic.fallback_regions == 1

        result = simulate_state(sdfg, {})
        memory = MemoryModel(sdfg, {}, line_size=LINE)
        assert analytic.total_events == result.num_events
        for capacity in CAPACITIES:
            model = CacheModel(LINE, capacity)
            assert analytic.miss_counts(capacity) == per_container_misses(
                result.events, memory, model
            )
            for name in analytic.containers:
                assert analytic.per_element_misses(
                    name, capacity
                ) == per_element_misses(result.events, memory, model, name)

    def test_mixed_affine_nonaffine_stitching(self):
        """Two sequential maps — one affine, one not — share containers;
        cross-region reuse must survive the per-region fallback."""
        sdfg = SDFG("mixed")
        sdfg.add_array("A", [64, 64], dtypes.float64)
        sdfg.add_array("B", [64, 64], dtypes.float64)
        sdfg.add_array("C", [64, 64], dtypes.float64)
        state = sdfg.add_state("main")
        state.add_mapped_tasklet(
            "affine",
            {"i": "0:6", "j": "0:4"},
            inputs={"a": Memlet("A", "i, j")},
            code="out = a",
            outputs={"out": Memlet("B", "i, j")},
        )
        state.add_mapped_tasklet(
            "squares",
            {"i": "0:6", "j": "0:4"},
            inputs={"b": Memlet("B", "i*i, j")},
            code="out = b",
            outputs={"out": Memlet("C", "i, j")},
        )
        analytic = analyze_locality(sdfg, {})
        assert analytic.fallback_regions >= 1

        result = simulate_state(sdfg, {})
        memory = MemoryModel(sdfg, {}, line_size=LINE)
        for capacity in CAPACITIES:
            model = CacheModel(LINE, capacity)
            assert analytic.miss_counts(capacity) == per_container_misses(
                result.events, memory, model
            )

    def test_cross_region_reuse_is_not_double_cold(self):
        """A container touched by two regions is cold only once per line."""
        sdfg = SDFG("tworegions")
        sdfg.add_array("A", [32], dtypes.float64)
        sdfg.add_array("B", [32], dtypes.float64)
        sdfg.add_array("C", [32], dtypes.float64)
        state = sdfg.add_state("main")
        state.add_mapped_tasklet(
            "first",
            {"i": "0:32"},
            inputs={"a": Memlet("A", "i")},
            code="out = a",
            outputs={"out": Memlet("B", "i")},
        )
        state.add_mapped_tasklet(
            "second",
            {"i": "0:32"},
            inputs={"a": Memlet("A", "i")},
            code="out = a",
            outputs={"out": Memlet("C", "i")},
        )
        analytic = analyze_locality(sdfg, {})
        assert analytic.fallback_regions == 2
        # 32 float64 elements = 4 cache lines; the second region's reads
        # of A reuse lines that are already resident, not cold.
        assert analytic.cold_misses()["A"] == 4
        trace, distances = enumeration_reference(sdfg, {})
        ref_hists, ref_cold = reference_histograms(trace, distances)
        assert analytic.cold_misses() == ref_cold
        for name in analytic.containers:
            assert analytic.histogram(name) == ref_hists[name]


class TestProductionScaleSmoke:
    """The engine's reason to exist: local views where enumeration is
    intractable.  Kept small enough for CI while still exercising the
    folded path end to end at a size with >10^5 events."""

    def test_folded_large_extent_consistency(self):
        sizes = {"I": 512, "J": 16, "K": 8}
        analytic = analyze_locality(hdiff.build_sdfg(), sizes)
        assert analytic.analytic_regions == 1
        counts = analytic.miss_counts(512)
        totals = analytic.events_per_container
        assert analytic.total_events == sum(totals.values())
        for name, mc in counts.items():
            assert mc.hits + mc.cold + mc.capacity == totals[name], name
            assert mc.hits >= 0 and mc.cold > 0
        # Cold misses are bounded by the container footprint in lines.
        hist_events = {
            name: sum(analytic.histogram(name).values()) for name in counts
        }
        for name in counts:
            assert hist_events[name] + analytic.cold_misses()[name] == totals[name]
