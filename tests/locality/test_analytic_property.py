"""Property tests for the analytic locality engine.

Two independent oracles pin the engine down:

* :func:`stack_distances_bruteforce` — the O(n²) textbook LRU stack
  simulation — on random small affine/non-affine nests (Hypothesis);
* plain enumeration on a *parameterized* stencil family, evaluated
  against the engine's closed-form :class:`SymbolicLocality` expressions
  across outer extents, including extents where a fresh fold would be
  uneconomic and the engine itself would enumerate.
"""

from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality import analyze_locality
from repro.sdfg import dtypes
from repro.sdfg.memlet import Memlet
from repro.sdfg.sdfg import SDFG
from repro.simulation import MemoryModel, simulate_state
from repro.simulation.cache import CacheModel
from repro.simulation.movement import per_container_misses
from repro.simulation.stackdist import line_trace, stack_distances_bruteforce
from repro.symbolic import evaluate_int
from tests.simulation.test_vectorized_differential import single_map_sdfg

LINE = 64
CAPACITIES = (4, 512)


def bruteforce_reference(sdfg, env):
    """Histograms/cold per container from the O(n²) oracle."""
    result = simulate_state(sdfg, env)
    memory = MemoryModel(sdfg, env, line_size=LINE)
    distances = stack_distances_bruteforce(line_trace(result.events, memory))
    hist: dict[str, Counter] = defaultdict(Counter)
    cold: Counter = Counter()
    for event, distance in zip(result.events, distances):
        if distance == float("inf"):
            cold[event.data] += 1
        else:
            hist[event.data][int(distance)] += 1
    return result, memory, hist, cold


index_exprs = st.one_of(
    st.tuples(
        st.integers(0, 3), st.integers(0, 2), st.integers(0, 2)
    ).map(lambda t: f"{t[0]} + {t[1]}*i + {t[2]}*j"),
    st.tuples(st.integers(0, 2), st.integers(1, 3)).map(
        lambda t: f"i + {t[0]}:i + {t[0]} + {t[1]}"
    ),
    # non-affine subsets exercise the per-region enumeration fallback
    st.just("i*i"),
    st.just("i*j"),
)

map_ranges = st.tuples(
    st.integers(0, 2), st.integers(1, 4), st.integers(1, 2)
).map(lambda t: f"{t[0]}:{t[0] + t[1] * t[2]}:{t[2]}")


@st.composite
def random_programs(draw):
    iteration = {"i": draw(map_ranges), "j": draw(map_ranges)}
    nsubsets = draw(st.integers(1, 3))
    subsets = [draw(index_exprs) + ", j" for _ in range(nsubsets)]
    return single_map_sdfg(subsets, iteration)


class TestAgainstBruteforce:
    @given(random_programs())
    @settings(max_examples=50, deadline=None)
    def test_histograms_match_bruteforce(self, sdfg):
        result, _, ref_hist, ref_cold = bruteforce_reference(sdfg, {})
        analytic = analyze_locality(sdfg, {}, line_size=LINE)
        assert analytic.total_events == result.num_events
        for name in analytic.containers:
            assert analytic.histogram(name) == dict(ref_hist[name]), name
            assert analytic.cold_misses()[name] == ref_cold[name], name

    @given(random_programs())
    @settings(max_examples=25, deadline=None)
    def test_miss_counts_match_object_pipeline(self, sdfg):
        result, memory, _, _ = bruteforce_reference(sdfg, {})
        analytic = analyze_locality(sdfg, {}, line_size=LINE)
        for capacity in CAPACITIES:
            assert analytic.miss_counts(capacity) == per_container_misses(
                result.events, memory, CacheModel(LINE, capacity)
            )


def stencil_family(max_n):
    """Three-point stencil over ``0:N`` — one program, many extents.
    Arrays are sized for the largest extent and rounded to whole cache
    lines so the layout (and hence the fold geometry) is extent-invariant."""
    size = ((max_n + 3 + 7) // 8) * 8
    sdfg = SDFG("stencil_family")
    sdfg.add_array("A", [size], dtypes.float64)
    sdfg.add_array("B", [size], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "stencil",
        {"i": "0:N"},
        inputs={"a": Memlet("A", "i:i+3")},
        code="out = a",
        outputs={"out": Memlet("B", "i")},
    )
    return sdfg


class TestSymbolicExtrapolation:
    """The closed-form expressions must predict *enumeration* exactly at
    every extent ≥ ``valid_from`` — far below the analysis point, and at
    extents where a fresh fold would decline on the economic guard."""

    MAX_N = 700
    BASE_N = 600

    def _symbolic(self):
        sdfg = stencil_family(self.MAX_N)
        analytic = analyze_locality(sdfg, {"N": self.BASE_N}, line_size=LINE)
        assert analytic.analytic_regions == 1
        assert analytic.symbolic is not None
        return sdfg, analytic.symbolic

    def test_symbolic_matches_enumeration_across_extents(self):
        sdfg, symbolic = self._symbolic()
        assert symbolic.outer_param == "i"
        extents = sorted(
            {symbolic.valid_from, 200, 300, 357, 512, self.BASE_N, 601}
        )
        for n in extents:
            assert n >= symbolic.valid_from
            result = simulate_state(sdfg, {"N": n})
            memory = MemoryModel(sdfg, {"N": n}, line_size=LINE)
            env = {"N": n}
            for capacity in CAPACITIES:
                ref = per_container_misses(
                    result.events, memory, CacheModel(LINE, capacity)
                )
                cap_exprs = symbolic.capacity_misses(capacity)
                for name, counts in ref.items():
                    total = counts.hits + counts.cold + counts.capacity
                    assert evaluate_int(symbolic.total[name], env) == total
                    assert evaluate_int(symbolic.cold[name], env) == counts.cold
                    assert (
                        evaluate_int(cap_exprs[name], env) == counts.capacity
                    ), (name, n, capacity)

    def test_symbolic_agrees_with_fresh_analysis(self):
        sdfg, symbolic = self._symbolic()
        for n in (400, 512):
            env = {"N": n}
            fresh = analyze_locality(sdfg, env, line_size=LINE)
            for name in fresh.containers:
                totals = fresh.events_per_container
                assert evaluate_int(symbolic.total[name], env) == totals[name]
                assert (
                    evaluate_int(symbolic.cold[name], env)
                    == fresh.cold_misses()[name]
                )

    def test_histogram_expressions_sum_to_total(self):
        _, symbolic = self._symbolic()
        env = {"N": 555}
        for name, bucket in symbolic.hist.items():
            finite = sum(evaluate_int(e, env) for e in bucket.values())
            cold = evaluate_int(symbolic.cold[name], env)
            assert finite + cold == evaluate_int(symbolic.total[name], env)
