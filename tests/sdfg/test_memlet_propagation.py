"""Tests for memlets and propagation through map scopes."""

import pytest

from repro.errors import ReproError
from repro.sdfg import Array, Memlet, Map, dtypes
from repro.sdfg.propagation import propagate_memlet, propagate_subset
from repro.symbolic import Integer, Range, Subset, symbols

I, J, K = symbols("I J K")


class TestMemlet:
    def test_volume_from_subset(self):
        m = Memlet("A", "0:I, 0:J")
        assert m.volume() == I * J

    def test_scalar_memlet(self):
        m = Memlet("s")
        assert m.subset.dims == 0
        assert m.volume() == Integer(1)

    def test_point_volume(self):
        assert Memlet("A", "i, j").volume() == Integer(1)

    def test_bytes_moved(self):
        desc = Array(dtypes.float64, [I, J])
        m = Memlet("A", "0:I, 0:J")
        assert m.bytes_moved(desc) == I * J * 8

    def test_volume_hint_overrides(self):
        m = Memlet("A", "0:I", volume_hint=I * 3)
        assert m.volume() == I * 3

    def test_wcr_validation(self):
        Memlet("A", "i", wcr="sum")
        with pytest.raises(ReproError):
            Memlet("A", "i", wcr="xor")

    def test_subs(self):
        m = Memlet("A", "i, 0:J").subs({"i": 3, "J": 5})
        assert str(m.subset) == "3, 0:5"

    def test_full(self):
        desc = Array(dtypes.float64, [I, J])
        assert Memlet.full("A", desc).volume() == I * J

    def test_equality(self):
        assert Memlet("A", "0:I") == Memlet("A", "0:I")
        assert Memlet("A", "0:I") != Memlet("B", "0:I")

    def test_invalid_data_name(self):
        with pytest.raises(ReproError):
            Memlet("", "0:I")


def make_map(**ranges):
    return Map("m", list(ranges), [Range.from_string(r) for r in ranges.values()])


class TestPropagation:
    def test_point_to_full_range(self):
        m = make_map(i="0:I")
        inner = Memlet("A", "i")
        outer = propagate_memlet(inner, m)
        assert str(outer.subset) == "0:I"
        assert outer.volume() == I

    def test_two_params(self):
        m = make_map(i="0:I", j="0:J")
        outer = propagate_memlet(Memlet("C", "i, j"), m)
        assert str(outer.subset) == "0:I, 0:J"
        assert outer.volume() == I * J

    def test_param_free_dim_untouched(self):
        m = make_map(i="0:I")
        outer = propagate_memlet(Memlet("A", "i, 0:K"), m)
        assert str(outer.subset) == "0:I, 0:K"
        assert outer.volume() == I * K

    def test_replicated_read_volume(self):
        # A[i] read inside a map over (i, j): each row read J times.
        m = make_map(i="0:I", j="0:J")
        outer = propagate_memlet(Memlet("A", "i"), m)
        assert str(outer.subset) == "0:I"
        assert outer.volume() == I * J  # volume hint preserves total movement

    def test_offset_window(self):
        # Stencil-style window i:i+3 over i in 0:I → union 0:I+2.
        m = make_map(i="0:I")
        outer = propagate_memlet(Memlet("A", "i:i+3"), m)
        assert str(outer.subset) == f"0:{I + 2}"
        assert outer.volume() == 3 * I

    def test_affine_coefficient(self):
        # A[2*i] over i in 0:I → union 0..2I-2.
        m = make_map(i="0:I")
        outer = propagate_memlet(Memlet("A", "2*i"), m)
        concrete = outer.subset.subs({"I": 5}).ranges[0]
        assert (concrete.begin.evaluate(), concrete.end.evaluate()) == (0, 8)

    def test_subset_propagation_multi_param_dim(self):
        # A[i + j] with i in 0:I, j in 0:J → 0 .. I+J-2.
        m = make_map(i="0:I", j="0:J")
        s = propagate_subset(Subset.from_string("i + j"), m)
        r = s.ranges[0]
        assert r.begin.evaluate({"I": 3, "J": 4}) == 0
        assert r.end.evaluate({"I": 3, "J": 4}) == 5

    def test_wcr_preserved(self):
        m = make_map(i="0:I")
        outer = propagate_memlet(Memlet("acc", "0", wcr="sum"), m)
        assert outer.wcr == "sum"

    def test_nested_propagation_volume(self):
        inner_map = make_map(j="0:J")
        outer_map = make_map(i="0:I")
        inner = Memlet("C", "i, j")
        mid = propagate_memlet(inner, inner_map)
        outer = propagate_memlet(mid, outer_map)
        assert outer.volume() == I * J
        assert str(outer.subset) == "0:I, 0:J"
