"""Tests for dtypes and data descriptors."""

import numpy as np
import pytest

from repro.errors import ReproError, SymbolicError
from repro.sdfg import Array, Scalar, dtypes
from repro.symbolic import Integer, Symbol, symbols

I, J, K = symbols("I J K")


class TestDtypes:
    def test_sizes(self):
        assert dtypes.float64.itemsize == 8
        assert dtypes.float32.itemsize == 4
        assert dtypes.int8.itemsize == 1
        assert dtypes.complex128.itemsize == 16

    def test_numpy_round_trip(self):
        for name in ["float32", "float64", "int32", "int64", "uint8", "bool"]:
            t = dtypes.by_name(name)
            assert dtypes.from_numpy(t.as_numpy) == t

    def test_numpy_dtype(self):
        assert dtypes.float64.as_numpy == np.dtype("float64")

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            dtypes.by_name("float128x")

    def test_kinds(self):
        assert dtypes.float32.is_floating
        assert dtypes.int32.is_integer
        assert not dtypes.int32.is_floating

    def test_annotation_syntax(self):
        dtype, shape = dtypes.float64[I, J]
        assert dtype == dtypes.float64
        assert shape == (I, J)

    def test_annotation_single_dim(self):
        _, shape = dtypes.float32[8]
        assert shape == (8,)


class TestArrayLayout:
    def test_default_c_strides(self):
        a = Array(dtypes.float64, [I, J, K])
        assert a.strides == (J * K, K, Integer(1))
        assert a.is_c_contiguous()

    def test_f_strides(self):
        a = Array(dtypes.float64, [I, J], strides=Array.f_strides([I, J]))
        assert a.strides == (Integer(1), I)
        assert a.is_f_contiguous()
        assert not a.is_c_contiguous()

    def test_element_offset_row_major(self):
        a = Array(dtypes.float32, [4, 5])
        assert a.concrete_element_offset((0, 0)) == 0
        assert a.concrete_element_offset((1, 0)) == 5
        assert a.concrete_element_offset((2, 3)) == 13

    def test_byte_offset(self):
        a = Array(dtypes.float32, [4, 5])
        assert a.byte_offset([1, 0]).evaluate() == 20

    def test_start_offset(self):
        a = Array(dtypes.float64, [4], start_offset=2)
        assert a.concrete_element_offset((0,)) == 2

    def test_symbolic_offset(self):
        a = Array(dtypes.float64, [I, J])
        off = a.element_offset([Symbol("i"), Symbol("j")])
        assert off.evaluate({"i": 2, "j": 3, "J": 10}) == 23

    def test_total_elements_contiguous(self):
        a = Array(dtypes.float64, [4, 5])
        assert a.total_elements().evaluate() == 20

    def test_total_elements_padded(self):
        # Rows of 5 elements padded to stride 8.
        a = Array(dtypes.float64, [4, 5], strides=[8, 1])
        assert a.total_elements().evaluate() == 3 * 8 + 4 + 1  # == 29
        assert a.total_bytes().evaluate() == 29 * 8

    def test_wrong_rank_strides(self):
        with pytest.raises(ReproError):
            Array(dtypes.float64, [4, 5], strides=[1])

    def test_empty_shape_rejected(self):
        with pytest.raises(ReproError):
            Array(dtypes.float64, [])

    def test_wrong_index_count(self):
        a = Array(dtypes.float64, [4, 5])
        with pytest.raises(SymbolicError):
            a.element_offset([1])

    def test_negative_alignment(self):
        with pytest.raises(ReproError):
            Array(dtypes.float64, [4], alignment=-1)


class TestArrayTransforms:
    def test_permuted_relayout(self):
        a = Array(dtypes.float64, [I + 4, J + 4, K])
        b = a.permuted([2, 0, 1])
        assert b.shape == (K, I + 4, J + 4)
        assert b.is_c_contiguous()

    def test_permuted_invalid(self):
        a = Array(dtypes.float64, [4, 5])
        with pytest.raises(ReproError):
            a.permuted([0, 0])

    def test_transposed_view_keeps_strides(self):
        a = Array(dtypes.float64, [4, 5])
        v = a.transposed_view([1, 0])
        assert v.shape == (Integer(5), Integer(4))
        assert v.strides == (Integer(1), Integer(5))
        # Same element, same address:
        assert v.concrete_element_offset((3, 2)) == a.concrete_element_offset((2, 3))

    def test_with_strides(self):
        a = Array(dtypes.float64, [4, 5])
        b = a.with_strides([16, 1])
        assert b.strides == (Integer(16), Integer(1))
        assert b.shape == a.shape

    def test_num_elements(self):
        assert Array(dtypes.float64, [I, J]).num_elements() == I * J


class TestScalar:
    def test_shape(self):
        s = Scalar(dtypes.float64)
        assert s.shape == ()
        assert s.total_bytes() == Integer(8)

    def test_equality(self):
        assert Scalar(dtypes.float64) == Scalar(dtypes.float64)
        assert Scalar(dtypes.float64) != Scalar(dtypes.float32)
