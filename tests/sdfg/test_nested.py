"""Tests for NestedSDFG construction, execution and simulation."""

import numpy as np
import pytest

from repro.codegen import interpret_sdfg
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.serialize import from_json, to_json
from repro.simulation import simulate_state
from repro.symbolic import symbols

I, N = symbols("I N")


def build_inner():
    """Inner program: out[i] = inp[i] * 2 over N elements."""
    inner = SDFG("double_kernel")
    inner.add_array("inp", [N], dtypes.float64)
    inner.add_array("outp", [N], dtypes.float64)
    state = inner.add_state("body")
    state.add_mapped_tasklet(
        "double",
        {"i": "0:N"},
        inputs={"x": Memlet("inp", "i")},
        code="_out = x * 2.0",
        outputs={"_out": Memlet("outp", "i")},
    )
    return inner


def build_outer():
    """Outer program: apply the inner kernel to A[2:2+N] -> B[0:N]."""
    outer = SDFG("host")
    outer.add_symbol("N")
    outer.add_array("A", [N + 4], dtypes.float64)
    outer.add_array("B", [N], dtypes.float64)
    state = outer.add_state("main")
    a, b = state.add_access("A"), state.add_access("B")
    nested = state.add_nested_sdfg(build_inner(), ["inp"], ["outp"])
    state.add_edge(a, None, nested, "inp", Memlet("A", "2:N+2"))
    state.add_edge(nested, "outp", b, None, Memlet("B", "0:N"))
    return outer


class TestStructure:
    def test_validates(self):
        build_outer().validate()

    def test_serialization_round_trip(self):
        outer = build_outer()
        clone = from_json(to_json(outer))
        clone.validate()
        nested = [
            n for s in clone.states() for n in s.nodes()
            if type(n).__name__ == "NestedSDFG"
        ]
        assert len(nested) == 1
        assert nested[0].sdfg.name == "double_kernel"


class TestInterpreter:
    def test_executes_on_offset_window(self):
        outer = build_outer()
        a = np.arange(10.0)
        b = np.zeros(6)
        interpret_sdfg(outer, {"A": a, "B": b}, {"N": 6})
        np.testing.assert_allclose(b, a[2:8] * 2.0)

    def test_writes_through_views(self):
        """Inner writes land in the outer array region directly."""
        outer = SDFG("inplace")
        outer.add_symbol("N")
        outer.add_array("A", [N + 4], dtypes.float64)
        state = outer.add_state()
        src = state.add_access("A")
        dst = state.add_access("A")
        nested = state.add_nested_sdfg(build_inner(), ["inp"], ["outp"])
        state.add_edge(src, None, nested, "inp", Memlet("A", "0:N"))
        state.add_edge(nested, "outp", dst, None, Memlet("A", "4:N+4"))
        a = np.arange(8.0)
        interpret_sdfg(outer, {"A": a}, {"N": 4})
        np.testing.assert_allclose(a[4:8], np.arange(4.0) * 2.0)

    def test_symbol_mapping(self):
        outer = SDFG("mapped")
        outer.add_symbol("I")
        outer.add_array("A", [I], dtypes.float64)
        outer.add_array("B", [I], dtypes.float64)
        state = outer.add_state()
        a, b = state.add_access("A"), state.add_access("B")
        # The inner kernel's N is the outer I (renamed through the mapping).
        nested = state.add_nested_sdfg(
            build_inner(), ["inp"], ["outp"], symbol_mapping={"N": "I"}
        )
        state.add_edge(a, None, nested, "inp", Memlet("A", "0:I"))
        state.add_edge(nested, "outp", b, None, Memlet("B", "0:I"))
        arr = np.arange(5.0)
        out = np.zeros(5)
        interpret_sdfg(outer, {"A": arr, "B": out}, {"I": 5})
        np.testing.assert_allclose(out, arr * 2.0)

    def test_missing_binding_rejected(self):
        from repro.errors import CodegenError

        outer = SDFG("broken")
        outer.add_symbol("N")
        outer.add_array("A", [N], dtypes.float64)
        state = outer.add_state()
        a = state.add_access("A")
        nested = state.add_nested_sdfg(build_inner(), [], ["outp"])
        state.add_edge(nested, "outp", a, None, Memlet("A", "0:N"))
        with pytest.raises(CodegenError, match="binding"):
            interpret_sdfg(outer, {"A": np.zeros(3)}, {"N": 3})


class TestSimulation:
    def test_events_translated_to_outer_names(self):
        outer = build_outer()
        result = simulate_state(outer, {"N": 4})
        assert set(result.containers()) == {"A", "B"}
        # Inner reads of inp[i] become reads of A[i + 2].
        reads = sorted(e.indices for e in result.events if e.data == "A")
        assert reads == [(2,), (3,), (4,), (5,)]
        writes = sorted(e.indices for e in result.events if e.data == "B")
        assert writes == [(0,), (1,), (2,), (3,)]

    def test_steps_advance_through_nested(self):
        outer = build_outer()
        result = simulate_state(outer, {"N": 3})
        assert result.num_steps == 3

    def test_folding_summarizes_nested(self):
        from repro.viz.lod import FoldState, FoldedScope

        outer = build_outer()
        state = outer.start_state
        fold = FoldState(state)
        nested = next(
            n for n in state.nodes() if type(n).__name__ == "NestedSDFG"
        )
        fold.collapse(nested)
        summaries = [
            v for v in fold.visible_nodes() if isinstance(v, FoldedScope)
        ]
        assert len(summaries) == 1
        assert "folded SDFG" in summaries[0].summary
