"""Tests for SDFG construction, scopes and validation."""

import pytest

from repro.errors import InvalidSDFGError, ReproError
from repro.sdfg import SDFG, AccessNode, MapEntry, MapExit, Memlet, Tasklet, dtypes
from repro.symbolic import Symbol, symbols

I, J = symbols("I J")


def outer_product_sdfg():
    """C[i, j] = A[i] * B[j] over a 2D map — the paper's Fig. 3 program."""
    sdfg = SDFG("outer")
    sdfg.add_array("A", [I], dtypes.float64)
    sdfg.add_array("B", [J], dtypes.float64)
    sdfg.add_array("C", [I, J], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "product",
        {"i": "0:I", "j": "0:J"},
        inputs={"a": Memlet("A", "i"), "b": Memlet("B", "j")},
        code="out = a * b",
        outputs={"out": Memlet("C", "i, j")},
    )
    return sdfg


class TestConstruction:
    def test_add_array_registers_symbols(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [I, J], dtypes.float64)
        assert {"I", "J"} <= sdfg.symbols

    def test_duplicate_container_rejected(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [4], dtypes.float64)
        with pytest.raises(ReproError):
            sdfg.add_array("A", [4], dtypes.float64)

    def test_invalid_names(self):
        with pytest.raises(ReproError):
            SDFG("bad name")
        sdfg = SDFG("s")
        with pytest.raises(ReproError):
            sdfg.add_array("1bad", [4], dtypes.float64)

    def test_access_node_requires_known_container(self):
        sdfg = SDFG("s")
        state = sdfg.add_state()
        with pytest.raises(ReproError):
            state.add_access("nope")

    def test_mapped_tasklet_structure(self):
        sdfg = outer_product_sdfg()
        state = sdfg.start_state
        kinds = [type(n).__name__ for n in state.topological_nodes()]
        assert kinds.count("AccessNode") == 3
        assert kinds.count("MapEntry") == 1
        assert kinds.count("MapExit") == 1
        assert kinds.count("Tasklet") == 1

    def test_mapped_tasklet_propagated_outer_memlets(self):
        sdfg = outer_product_sdfg()
        state = sdfg.start_state
        entry = state.map_entries()[0]
        outer_in = {e.data.memlet.data: e.data.memlet for e in state.in_edges(entry)}
        # A is read once per (i, j) pair -> volume I*J, union subset 0:I.
        assert str(outer_in["A"].subset) == "0:I"
        assert outer_in["A"].volume() == I * J
        assert str(outer_in["B"].subset) == "0:J"
        exit_ = entry.exit_node
        out_edge = state.out_edges(exit_)[0]
        assert str(out_edge.data.memlet.subset) == "0:I, 0:J"
        assert out_edge.data.memlet.volume() == I * J

    def test_validates(self):
        outer_product_sdfg().validate()

    def test_io_classification(self):
        sdfg = outer_product_sdfg()
        assert set(sdfg.input_containers()) == {"A", "B"}
        assert sdfg.output_containers() == ["C"]

    def test_transient_not_io(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [4], dtypes.float64)
        sdfg.add_transient("tmp", [4], dtypes.float64)
        sdfg.add_array("B", [4], dtypes.float64)
        state = sdfg.add_state()
        a, t, b = state.add_access("A"), state.add_access("tmp"), state.add_access("B")
        t1 = state.add_tasklet("copy1", ["x"], ["y"], "y = x")
        t2 = state.add_tasklet("copy2", ["x"], ["y"], "y = x")
        state.add_edge(a, None, t1, "x", Memlet("A", "0"))
        state.add_edge(t1, "y", t, None, Memlet("tmp", "0"))
        state.add_edge(t, None, t2, "x", Memlet("tmp", "0"))
        state.add_edge(t2, "y", b, None, Memlet("B", "0"))
        assert sdfg.input_containers() == ["A"]
        assert sdfg.output_containers() == ["B"]


class TestScopes:
    def test_scope_dict(self):
        sdfg = outer_product_sdfg()
        state = sdfg.start_state
        sdict = state.scope_dict()
        entry = state.map_entries()[0]
        tasklet = state.tasklets()[0]
        assert sdict[tasklet] is entry
        assert sdict[entry] is None
        assert sdict[entry.exit_node] is None
        for node in state.data_nodes():
            assert sdict[node] is None

    def test_scope_children(self):
        sdfg = outer_product_sdfg()
        state = sdfg.start_state
        entry = state.map_entries()[0]
        children = state.scope_children()
        assert state.tasklets()[0] in children[entry]
        assert entry in children[None]

    def test_nested_scopes(self):
        sdfg = SDFG("nested")
        sdfg.add_array("A", [I, J], dtypes.float64)
        sdfg.add_array("B", [I, J], dtypes.float64)
        state = sdfg.add_state()
        a, b = state.add_access("A"), state.add_access("B")
        oentry, oexit = state.add_map("outer", {"i": "0:I"})
        ientry, iexit = state.add_map("inner", {"j": "0:J"})
        t = state.add_tasklet("copy", ["x"], ["y"], "y = x")
        state.add_memlet_path(a, oentry, ientry, t, memlet=Memlet("A", "i, j"), dst_conn="x")
        state.add_memlet_path(t, iexit, oexit, b, memlet=Memlet("B", "i, j"), src_conn="y")
        sdfg.validate()
        sdict = state.scope_dict()
        assert sdict[t] is ientry
        assert sdict[ientry] is oentry
        assert sdict[oentry] is None
        # Propagation happened twice for the outermost edges.
        outer_edge = state.out_edges(a)[0]
        assert str(outer_edge.data.memlet.subset) == "0:I, 0:J"


class TestStateMachine:
    def test_start_state(self):
        sdfg = SDFG("s")
        s0 = sdfg.add_state("first")
        sdfg.add_state("second")
        assert sdfg.start_state is s0

    def test_add_state_after(self):
        sdfg = SDFG("s")
        s0 = sdfg.add_state()
        s1 = sdfg.add_state_after(s0)
        assert sdfg.all_states_topological() == [s0, s1]
        assert len(sdfg.interstate_edges()) == 1

    def test_duplicate_state_name(self):
        sdfg = SDFG("s")
        sdfg.add_state("x")
        with pytest.raises(ReproError):
            sdfg.add_state("x")

    def test_no_states(self):
        sdfg = SDFG("s")
        with pytest.raises(ReproError):
            _ = sdfg.start_state
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()


class TestValidation:
    def test_undefined_memlet_container(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [4], dtypes.float64)
        state = sdfg.add_state()
        a = state.add_access("A")
        t = state.add_tasklet("t", ["x"], ["y"], "y = x")
        state.add_edge(a, None, t, "x", Memlet("Z", "0"))
        state.add_edge(t, "y", a, None, Memlet("A", "0"))
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()

    def test_rank_mismatch(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [4, 4], dtypes.float64)
        state = sdfg.add_state()
        a = state.add_access("A")
        t = state.add_tasklet("t", ["x"], ["y"], "y = x")
        state.add_edge(a, None, t, "x", Memlet("A", "0"))  # rank 1 vs 2
        state.add_edge(t, "y", a, None, Memlet("A", "0, 0"))
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()

    def test_dangling_tasklet(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [4], dtypes.float64)
        state = sdfg.add_state()
        a = state.add_access("A")
        t = state.add_tasklet("t", ["x"], ["y"], "y = x")
        state.add_edge(a, None, t, "x", Memlet("A", "0"))
        # No outgoing edge from tasklet.
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()

    def test_unfed_connector(self):
        sdfg = SDFG("s")
        sdfg.add_array("A", [4], dtypes.float64)
        state = sdfg.add_state()
        a = state.add_access("A")
        t = Tasklet("t", ["x", "unfed"], ["y"], "y = x")
        state.add_node(t)
        state.add_edge(a, None, t, "x", Memlet("A", "0"))
        state.add_edge(t, "y", a, None, Memlet("A", "1"))
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()
