"""Round-trip and content-hashing tests for SDFG JSON serialization."""

import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.serialize import (
    arrays_fingerprint,
    canonical_json,
    data_fingerprint,
    dumps,
    from_json,
    loads,
    node_fingerprint,
    sdfg_fingerprint,
    state_fingerprint,
    to_json,
)
from repro.symbolic import symbols

I, J = symbols("I J")


def outer_product_sdfg():
    sdfg = SDFG("outer")
    sdfg.add_array("A", [I], dtypes.float64)
    sdfg.add_array("B", [J], dtypes.float64)
    sdfg.add_array("C", [I, J], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "product",
        {"i": "0:I", "j": "0:J"},
        inputs={"a": Memlet("A", "i"), "b": Memlet("B", "j")},
        code="out = a * b",
        outputs={"out": Memlet("C", "i, j")},
    )
    return sdfg


def assert_equivalent(a: SDFG, b: SDFG):
    assert a.name == b.name
    assert a.symbols == b.symbols
    assert set(a.arrays) == set(b.arrays)
    for name in a.arrays:
        assert a.arrays[name] == b.arrays[name]
    assert len(a.states()) == len(b.states())
    for sa, sb in zip(a.states(), b.states()):
        assert sa.name == sb.name
        assert len(sa.nodes()) == len(sb.nodes())
        assert len(sa.edges()) == len(sb.edges())
        for ea, eb in zip(sa.edges(), sb.edges()):
            assert type(ea.src) is type(eb.src)
            assert ea.data.src_conn == eb.data.src_conn
            assert ea.data.dst_conn == eb.data.dst_conn
            assert ea.data.memlet == eb.data.memlet


class TestRoundTrip:
    def test_outer_product(self):
        sdfg = outer_product_sdfg()
        clone = from_json(to_json(sdfg))
        clone.validate()
        assert_equivalent(sdfg, clone)

    def test_double_round_trip_stable(self):
        sdfg = outer_product_sdfg()
        doc1 = to_json(sdfg)
        doc2 = to_json(from_json(doc1))
        assert doc1 == doc2

    def test_string_round_trip(self):
        sdfg = outer_product_sdfg()
        clone = loads(dumps(sdfg))
        assert_equivalent(sdfg, clone)

    def test_layout_attributes_preserved(self):
        sdfg = SDFG("layouts")
        sdfg.add_array(
            "A", [4, 5], dtypes.float32, strides=[8, 1], start_offset=2, alignment=64
        )
        sdfg.add_scalar("s", dtypes.int64)
        sdfg.add_transient("tmp", [4], dtypes.float64)
        sdfg.add_state("empty")
        clone = from_json(to_json(sdfg))
        a = clone.arrays["A"]
        assert a.strides[0].evaluate() == 8
        assert a.start_offset.evaluate() == 2
        assert a.alignment == 64
        assert clone.arrays["tmp"].transient

    def test_multi_state(self):
        sdfg = SDFG("two")
        sdfg.add_array("A", [I], dtypes.float64)
        s0 = sdfg.add_state("first")
        s1 = sdfg.add_state_after(s0, "second")
        sdfg.add_interstate_edge(s1, s0, condition="i < 10", assignments={"i": "i + 1"})
        clone = from_json(to_json(sdfg))
        assert [s.name for s in clone.states()] == ["first", "second"]
        assert clone.start_state.name == "first"
        edges = clone.interstate_edges()
        assert len(edges) == 2
        assert edges[1].data.condition == "i < 10"
        assert edges[1].data.assignments == {"i": "i + 1"}

    def test_wcr_and_volume_hint(self):
        sdfg = SDFG("wcr")
        sdfg.add_array("acc", [1], dtypes.float64)
        sdfg.add_array("A", [I], dtypes.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "reduce",
            {"i": "0:I"},
            inputs={"a": Memlet("A", "i")},
            code="out = a",
            outputs={"out": Memlet("acc", "0", wcr="sum")},
        )
        clone = from_json(to_json(sdfg))
        wcr_memlets = [
            m for s in clone.states() for _, m in s.all_memlets() if m.wcr is not None
        ]
        assert wcr_memlets
        hinted = [m for m in wcr_memlets if m.volume_hint is not None]
        assert any(m.volume() == I for m in hinted)

    def test_rejects_foreign_document(self):
        with pytest.raises(ReproError):
            from_json({"format": "something-else"})


class TestDeterminism:
    def test_dumps_is_deterministic(self):
        a = dumps(outer_product_sdfg())
        b = dumps(outer_product_sdfg())
        assert a == b

    def test_dumps_stable_across_round_trip(self):
        sdfg = outer_product_sdfg()
        assert dumps(loads(dumps(sdfg))) == dumps(sdfg)

    def test_canonical_json_normalizes_key_order(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_canonical_json_preserves_list_order(self):
        assert canonical_json([1, 2]) != canonical_json([2, 1])


class TestContentHashing:
    def test_fingerprint_stable_across_round_trip(self):
        sdfg = outer_product_sdfg()
        clone = loads(dumps(sdfg))
        assert sdfg_fingerprint(clone) == sdfg_fingerprint(sdfg)
        for ours, theirs in zip(sdfg.states(), clone.states()):
            assert state_fingerprint(ours) == state_fingerprint(theirs)
        assert arrays_fingerprint(clone) == arrays_fingerprint(sdfg)

    def test_fingerprint_stable_across_processes(self):
        """Content hashes must not depend on the process hash seed."""
        import os
        from pathlib import Path

        import repro

        script = (
            "from repro.apps import linalg\n"
            "from repro.sdfg.serialize import sdfg_fingerprint\n"
            "print(sdfg_fingerprint(linalg.build_outer_product()))\n"
        )
        from repro.apps import linalg

        expected = sdfg_fingerprint(linalg.build_outer_product())
        src = str(Path(repro.__file__).resolve().parents[1])
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONPATH": src, "PYTHONHASHSEED": seed},
                check=True,
            )
            assert result.stdout.strip() == expected

    def test_state_fingerprint_tracks_content(self):
        a, b = outer_product_sdfg(), outer_product_sdfg()
        sa, sb = a.start_state, b.start_state
        assert state_fingerprint(sa) == state_fingerprint(sb)
        entry = sb.map_entries()[0]
        entry.map.params = list(reversed(entry.map.params))
        entry.map.ranges = list(reversed(entry.map.ranges))
        assert state_fingerprint(sa) != state_fingerprint(sb)

    def test_data_fingerprint_logical_ignores_layout(self):
        sdfg = outer_product_sdfg()
        physical_before = data_fingerprint(sdfg.arrays["C"])
        logical_before = data_fingerprint(sdfg.arrays["C"], logical=True)
        from repro.transforms import pad_strides_to_multiple

        pad_strides_to_multiple(sdfg, "C", 8)
        assert data_fingerprint(sdfg.arrays["C"]) != physical_before
        assert data_fingerprint(sdfg.arrays["C"], logical=True) == logical_before

    def test_arrays_fingerprint_is_order_sensitive(self):
        """Registration order determines allocation order: it is content."""
        a = SDFG("one")
        a.add_array("X", [I], dtypes.float64)
        a.add_array("Y", [I], dtypes.float64)
        b = SDFG("one")
        b.add_array("Y", [I], dtypes.float64)
        b.add_array("X", [I], dtypes.float64)
        assert arrays_fingerprint(a) != arrays_fingerprint(b)
        # ...but the logical variant is not: access patterns don't care.
        assert arrays_fingerprint(a, logical=True) == arrays_fingerprint(
            b, logical=True
        )

    def test_node_fingerprint_position_independent(self):
        a, b = outer_product_sdfg(), outer_product_sdfg()
        nodes_a, nodes_b = a.start_state.nodes(), b.start_state.nodes()
        for na, nb in zip(nodes_a, nodes_b):
            assert node_fingerprint(na) == node_fingerprint(nb)
