"""Round-trip tests for SDFG JSON serialization."""

import pytest

from repro.errors import ReproError
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.serialize import dumps, from_json, loads, to_json
from repro.symbolic import symbols

I, J = symbols("I J")


def outer_product_sdfg():
    sdfg = SDFG("outer")
    sdfg.add_array("A", [I], dtypes.float64)
    sdfg.add_array("B", [J], dtypes.float64)
    sdfg.add_array("C", [I, J], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "product",
        {"i": "0:I", "j": "0:J"},
        inputs={"a": Memlet("A", "i"), "b": Memlet("B", "j")},
        code="out = a * b",
        outputs={"out": Memlet("C", "i, j")},
    )
    return sdfg


def assert_equivalent(a: SDFG, b: SDFG):
    assert a.name == b.name
    assert a.symbols == b.symbols
    assert set(a.arrays) == set(b.arrays)
    for name in a.arrays:
        assert a.arrays[name] == b.arrays[name]
    assert len(a.states()) == len(b.states())
    for sa, sb in zip(a.states(), b.states()):
        assert sa.name == sb.name
        assert len(sa.nodes()) == len(sb.nodes())
        assert len(sa.edges()) == len(sb.edges())
        for ea, eb in zip(sa.edges(), sb.edges()):
            assert type(ea.src) is type(eb.src)
            assert ea.data.src_conn == eb.data.src_conn
            assert ea.data.dst_conn == eb.data.dst_conn
            assert ea.data.memlet == eb.data.memlet


class TestRoundTrip:
    def test_outer_product(self):
        sdfg = outer_product_sdfg()
        clone = from_json(to_json(sdfg))
        clone.validate()
        assert_equivalent(sdfg, clone)

    def test_double_round_trip_stable(self):
        sdfg = outer_product_sdfg()
        doc1 = to_json(sdfg)
        doc2 = to_json(from_json(doc1))
        assert doc1 == doc2

    def test_string_round_trip(self):
        sdfg = outer_product_sdfg()
        clone = loads(dumps(sdfg))
        assert_equivalent(sdfg, clone)

    def test_layout_attributes_preserved(self):
        sdfg = SDFG("layouts")
        sdfg.add_array(
            "A", [4, 5], dtypes.float32, strides=[8, 1], start_offset=2, alignment=64
        )
        sdfg.add_scalar("s", dtypes.int64)
        sdfg.add_transient("tmp", [4], dtypes.float64)
        sdfg.add_state("empty")
        clone = from_json(to_json(sdfg))
        a = clone.arrays["A"]
        assert a.strides[0].evaluate() == 8
        assert a.start_offset.evaluate() == 2
        assert a.alignment == 64
        assert clone.arrays["tmp"].transient

    def test_multi_state(self):
        sdfg = SDFG("two")
        sdfg.add_array("A", [I], dtypes.float64)
        s0 = sdfg.add_state("first")
        s1 = sdfg.add_state_after(s0, "second")
        sdfg.add_interstate_edge(s1, s0, condition="i < 10", assignments={"i": "i + 1"})
        clone = from_json(to_json(sdfg))
        assert [s.name for s in clone.states()] == ["first", "second"]
        assert clone.start_state.name == "first"
        edges = clone.interstate_edges()
        assert len(edges) == 2
        assert edges[1].data.condition == "i < 10"
        assert edges[1].data.assignments == {"i": "i + 1"}

    def test_wcr_and_volume_hint(self):
        sdfg = SDFG("wcr")
        sdfg.add_array("acc", [1], dtypes.float64)
        sdfg.add_array("A", [I], dtypes.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "reduce",
            {"i": "0:I"},
            inputs={"a": Memlet("A", "i")},
            code="out = a",
            outputs={"out": Memlet("acc", "0", wcr="sum")},
        )
        clone = from_json(to_json(sdfg))
        wcr_memlets = [
            m for s in clone.states() for _, m in s.all_memlets() if m.wcr is not None
        ]
        assert wcr_memlets
        hinted = [m for m in wcr_memlets if m.volume_hint is not None]
        assert any(m.volume() == I for m in hinted)

    def test_rejects_foreign_document(self):
        with pytest.raises(ReproError):
            from_json({"format": "something-else"})
