"""Tests for the uniform Transform protocol (enumerate/apply/descriptors)."""

import pytest

from repro.apps import cloudsc, hdiff
from repro.errors import TransformError
from repro.sdfg.serialize import sdfg_fingerprint
from repro.transforms import (
    ChangeStrides,
    MapFusionTransform,
    Match,
    MoveLoopIntoMap,
    PadStrides,
    PermuteArrayLayout,
    ReorderMap,
    default_transforms,
    get_transform,
    resolve_transforms,
)


class TestRegistry:
    def test_default_set(self):
        names = {t.name for t in default_transforms()}
        assert names == {
            "permute_array_layout",
            "reorder_map",
            "pad_strides_to_multiple",
            "change_strides",
            "move_loop_into_map",
            "map_fusion",
        }

    def test_get_by_name(self):
        assert isinstance(get_transform("reorder_map"), ReorderMap)
        assert isinstance(
            get_transform("pad_strides_to_multiple", line_bytes=128), PadStrides
        )

    def test_unknown_name(self):
        with pytest.raises(TransformError, match="unknown transform"):
            get_transform("nope")

    def test_resolve_mixed(self):
        resolved = resolve_transforms(["change_strides", ReorderMap()])
        assert isinstance(resolved[0], ChangeStrides)
        assert isinstance(resolved[1], ReorderMap)

    def test_resolve_none_is_default(self):
        assert {t.name for t in resolve_transforms(None)} == {
            t.name for t in default_transforms()
        }


class TestEnumerate:
    def test_hdiff_match_counts(self):
        sdfg = hdiff.build_sdfg()
        counts = {
            t.name: len(t.enumerate_matches(sdfg))
            for t in default_transforms()
        }
        # Three rank-3 non-transient arrays, 5 non-identity permutations each.
        assert counts["permute_array_layout"] == 15
        assert counts["reorder_map"] == 5
        assert counts["pad_strides_to_multiple"] == 3
        assert counts["change_strides"] == 6
        assert counts["move_loop_into_map"] == 0
        assert counts["map_fusion"] == 0

    def test_cloudsc_has_loop_nest(self):
        sdfg = cloudsc.build_sdfg()
        matches = MoveLoopIntoMap().enumerate_matches(sdfg)
        assert len(matches) == 1
        assert matches[0].descriptor == ("vert", "vert_loop")

    def test_descriptors_stable_across_copies(self):
        """Matches on a copy have identical keys: (pipeline-key, transform,
        match) is cacheable regardless of which copy enumerated it."""
        sdfg = hdiff.build_sdfg()
        for transform in default_transforms():
            ours = [m.key for m in transform.enumerate_matches(sdfg)]
            theirs = [
                m.key for m in transform.enumerate_matches(sdfg.copy())
            ]
            assert ours == theirs

    def test_match_equality_and_dict(self):
        m1 = Match("reorder_map", ("s", "m", 0, (1, 0)), "detail a")
        m2 = Match("reorder_map", ("s", "m", 0, (1, 0)), "detail b")
        assert m1 == m2 and hash(m1) == hash(m2)  # detail is not identity
        assert m1.to_dict()["transform"] == "reorder_map"


class TestApply:
    def test_every_match_applies_on_hdiff(self):
        """Every enumerated match applies cleanly to a fresh copy."""
        base = hdiff.build_sdfg()
        for transform in default_transforms():
            for match in transform.enumerate_matches(base):
                target = base.copy()
                report = transform.apply(target, match)
                target.validate()
                assert sdfg_fingerprint(target) != sdfg_fingerprint(base)
                assert report.transform

    def test_apply_rejects_foreign_match(self):
        sdfg = hdiff.build_sdfg()
        match = Match("reorder_map", ("s", "m", 0, (1, 0)))
        with pytest.raises(TransformError):
            PermuteArrayLayout().apply(sdfg, match)

    def test_apply_rejects_stale_match(self):
        """A match enumerated before a conflicting mutation fails loudly."""
        sdfg = cloudsc.build_sdfg()
        match = MoveLoopIntoMap().enumerate_matches(sdfg)[0]
        MoveLoopIntoMap().apply(sdfg, match)
        with pytest.raises(TransformError):
            MoveLoopIntoMap().apply(sdfg, match)


class TestLayoutOnly:
    """layout_only drives pass invalidation: logical analyses must survive."""

    def test_change_strides_is_layout_only(self):
        sdfg = cloudsc.build_sdfg()
        transform = ChangeStrides()
        match = transform.enumerate_matches(sdfg)[0]
        report = transform.apply(sdfg, match)
        assert report.layout_only
        assert report.modified_arrays

    def test_pad_strides_is_layout_only(self):
        sdfg = hdiff.build_sdfg()
        transform = PadStrides()
        match = transform.enumerate_matches(sdfg)[0]
        assert transform.apply(sdfg, match).layout_only

    def test_permute_is_not_layout_only(self):
        """Permutation rewrites memlets — logical content changes."""
        sdfg = hdiff.build_sdfg()
        transform = PermuteArrayLayout()
        match = transform.enumerate_matches(sdfg)[0]
        report = transform.apply(sdfg, match)
        assert not report.layout_only
        assert report.modified_states

    def test_move_loop_is_not_layout_only(self):
        sdfg = cloudsc.build_sdfg()
        transform = MoveLoopIntoMap()
        match = transform.enumerate_matches(sdfg)[0]
        report = transform.apply(sdfg, match)
        assert not report.layout_only
        assert report.modified_states == ("vert",)


class TestMapFusionTransform:
    def test_roundtrip_through_protocol(self):
        from tests.transforms.test_map_fusion import build_chain

        sdfg = build_chain()
        transform = MapFusionTransform()
        matches = transform.enumerate_matches(sdfg)
        assert len(matches) == 1
        transform.apply(sdfg, matches[0])
        assert "B" not in sdfg.arrays
        assert transform.enumerate_matches(sdfg) == []
