"""Tests for transformation modification reports."""

from repro.apps import linalg
from repro.tool.session import Session
from repro.transforms import MapFusion, TransformReport, reorder_map
from repro.transforms.report import TransformReport as DirectImport


def test_exported_from_package():
    assert TransformReport is DirectImport


class TestDescribe:
    def test_bare(self):
        assert TransformReport("X").describe() == "X"

    def test_full(self):
        report = TransformReport(
            "MapFusion",
            modified_states=("main",),
            modified_arrays=("B", "t"),
            detail="fused a <- b",
        )
        text = report.describe()
        assert "MapFusion" in text and "fused a <- b" in text
        assert "main" in text and "B" in text

    def test_layout_only_flagged(self):
        report = TransformReport("pad", modified_arrays=("A",), layout_only=True)
        assert "layout only" in report.describe()


class TestTransformsReturnReports:
    def test_reorder_map(self):
        sdfg = linalg.build_matmul()
        entry = sdfg.start_state.map_entries()[0]
        report = reorder_map(entry, list(reversed(range(len(entry.map.params)))))
        assert isinstance(report, TransformReport)
        assert report.transform == "reorder_map"

    def test_map_fusion_names_modified_sets(self):
        from tests.passes.test_incremental import build_fusable_chain

        sdfg = build_fusable_chain()
        match = MapFusion.find_matches(sdfg, sdfg.start_state)[0]
        report = match.apply()
        assert isinstance(report, TransformReport)
        assert report.modified_states == ("main",)
        assert "B" in report.modified_arrays

    def test_session_apply_derives_report_for_plain_callables(self):
        from repro.transforms import pad_strides_to_multiple

        sdfg = linalg.build_matmul()
        session = Session(sdfg)
        report = session.apply(pad_strides_to_multiple, sdfg, "A", 8)
        assert report.modified_arrays == ("A",)
        assert report.layout_only
        assert not report.modified_states
