"""Differential suite: logical analyses are invariant under layout and
schedule transforms.

Operation count and symbolic data movement depend only on *logical*
program content — what is computed and how many bytes each memlet
carries — so reordering loops, changing strides, or permuting an
array's dimension order must not move either number.  Every seed app is
checked against every applicable match of the three transforms.
"""

import pytest

from repro.analysis.movement import total_movement_bytes
from repro.analysis.opcount import program_ops
from repro.apps import bert, cloudsc, conv, hdiff, linalg
from repro.transforms import (
    ChangeStrides,
    PermuteArrayLayout,
    ReorderMap,
)

APPS = [
    pytest.param(hdiff.build_sdfg, id="hdiff"),
    pytest.param(conv.build_conv, id="conv"),
    pytest.param(bert.build_sdfg, id="bert"),
    pytest.param(linalg.build_matmul, id="matmul"),
    pytest.param(cloudsc.build_sdfg, id="cloudsc"),
]

TRANSFORMS = [
    pytest.param(ReorderMap(), id="reorder_map"),
    pytest.param(ChangeStrides(), id="change_strides"),
    pytest.param(PermuteArrayLayout(), id="permute_array_layout"),
]


def _env(sdfg) -> dict[str, int]:
    """One concrete size per free symbol of the program's analyses."""
    names = (
        program_ops(sdfg).free_symbols()
        | total_movement_bytes(sdfg).free_symbols()
    )
    return {name: 8 for name in names}


def _measure(sdfg, env):
    return (
        program_ops(sdfg).evaluate(env),
        total_movement_bytes(sdfg).evaluate(env),
    )


@pytest.mark.parametrize("build", APPS)
@pytest.mark.parametrize("transform", TRANSFORMS)
def test_logical_analyses_invariant(build, transform):
    base = build()
    env = _env(base)
    reference = _measure(base, env)
    matches = transform.enumerate_matches(base)
    for match in matches:
        variant = base.copy()
        transform.apply(variant, match)
        variant.validate()
        assert _measure(variant, env) == reference, (
            f"{transform.name} match {match.descriptor} changed a logical "
            "analysis"
        )


@pytest.mark.parametrize("build", APPS)
def test_change_strides_reports_layout_only(build):
    """Stride changes never touch logical content — every report says so."""
    base = build()
    transform = ChangeStrides()
    for match in transform.enumerate_matches(base):
        variant = base.copy()
        report = transform.apply(variant, match)
        assert report.layout_only
        assert not report.modified_states


@pytest.mark.parametrize("build", APPS)
def test_permute_reports_logical_change(build):
    """Permutation rewrites memlets, so layout_only must be False."""
    base = build()
    transform = PermuteArrayLayout()
    for match in transform.enumerate_matches(base):
        variant = base.copy()
        report = transform.apply(variant, match)
        assert not report.layout_only


def test_sequences_compose_invariantly():
    """A whole tuned sequence preserves the logical analyses too."""
    base = hdiff.build_sdfg()
    env = _env(base)
    reference = _measure(base, env)
    variant = base.copy()
    for transform in (PermuteArrayLayout(), ReorderMap(), ChangeStrides()):
        match = transform.enumerate_matches(variant)[0]
        transform.apply(variant, match)
    variant.validate()
    assert _measure(variant, env) == reference
