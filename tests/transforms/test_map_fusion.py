"""Tests for map fusion."""

import pytest

from repro.analysis import total_movement_bytes
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.simulation import simulate_state
from repro.transforms import MapFusion, fuse_all_maps
from repro.symbolic import symbols

I, J, K = symbols("I J K")


def chain2():
    @program
    def prog(A: float64[I], C: float64[I]):
        for i in pmap(I):
            B[i] = A[i] * 2.0  # noqa: F821 - rewritten below
        for i in pmap(I):
            C[i] = B[i] + 1.0  # noqa: F821

    return prog


@program
def chain_with_transient(A: float64[I], C: float64[I]):
    for i in pmap(I):
        t = A[i] * 2.0
        C[i] = t + 1.0


def build_chain():
    """A -> map1 -> B(transient) -> map2 -> C, built via the builder API."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("chain")
    sdfg.add_array("A", [I], dtypes.float64)
    sdfg.add_transient("B", [I], dtypes.float64)
    sdfg.add_array("C", [I], dtypes.float64)
    state = sdfg.add_state("main")
    _, _, _ = state.add_mapped_tasklet(
        "scale",
        {"i": "0:I"},
        inputs={"x": Memlet("A", "i")},
        code="_out = x * 2.0",
        outputs={"_out": Memlet("B", "i")},
    )
    b_node = next(n for n in state.data_nodes() if n.data == "B")
    state.add_mapped_tasklet(
        "offset",
        {"j": "0:I"},
        inputs={"x": Memlet("B", "j")},
        code="_out = x + 1.0",
        outputs={"_out": Memlet("C", "j")},
        input_nodes={"B": b_node},
    )
    sdfg.validate()
    return sdfg


def build_stencil_chain():
    """Same but the consumer reads B[j] and B[j+1]: fusion must not match."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("stencil_chain")
    sdfg.add_array("A", [I + 1], dtypes.float64)
    sdfg.add_transient("B", [I + 1], dtypes.float64)
    sdfg.add_array("C", [I + 1], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "scale",
        {"i": "0:I+1"},
        inputs={"x": Memlet("A", "i")},
        code="_out = x * 2.0",
        outputs={"_out": Memlet("B", "i")},
    )
    b_node = next(n for n in state.data_nodes() if n.data == "B")
    entry, exit_ = state.add_map("offset", {"j": "0:I+1"})
    t = state.add_tasklet("avg", ["x", "y"], ["_out"], "_out = x + y")
    state.add_memlet_path(b_node, entry, t, memlet=Memlet("B", "j"), dst_conn="x")
    # Second read with an offset — breaks element-wise dependence.
    state.add_edge(entry, "OUT_B", t, "y", Memlet("B", "Min(j + 1, I)"))
    c_node = state.add_access("C")
    state.add_memlet_path(t, exit_, c_node, memlet=Memlet("C", "j"), src_conn="_out")
    return sdfg


class TestMatching:
    def test_finds_chain(self):
        sdfg = build_chain()
        matches = MapFusion.find_matches(sdfg, sdfg.start_state)
        assert len(matches) == 1

    def test_no_match_for_non_transient(self):
        sdfg = build_chain()
        sdfg.arrays["B"].transient = False
        assert MapFusion.find_matches(sdfg, sdfg.start_state) == []

    def test_no_match_for_stencil_dependence(self):
        sdfg = build_stencil_chain()
        assert MapFusion.find_matches(sdfg, sdfg.start_state) == []

    def test_no_match_for_range_mismatch(self):
        from repro.sdfg import SDFG, Memlet, dtypes

        sdfg = SDFG("mismatch")
        sdfg.add_array("A", [I], dtypes.float64)
        sdfg.add_transient("B", [I], dtypes.float64)
        sdfg.add_array("C", [I], dtypes.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "scale", {"i": "0:I"},
            inputs={"x": Memlet("A", "i")}, code="_out = x",
            outputs={"_out": Memlet("B", "i")},
        )
        b = next(n for n in state.data_nodes() if n.data == "B")
        state.add_mapped_tasklet(
            "half", {"j": "0:I:2"},
            inputs={"x": Memlet("B", "j")}, code="_out = x",
            outputs={"_out": Memlet("C", "j")},
            input_nodes={"B": b},
        )
        assert MapFusion.find_matches(sdfg, sdfg.start_state) == []


class TestApplication:
    def test_fusion_removes_intermediate(self):
        sdfg = build_chain()
        applied = fuse_all_maps(sdfg)
        assert applied == 1
        assert "B" not in sdfg.arrays
        sdfg.validate()
        state = sdfg.start_state
        assert len(state.map_entries()) == 1
        assert len(state.tasklets()) == 2

    def test_fusion_reduces_movement(self):
        sdfg = build_chain()
        before = total_movement_bytes(sdfg).evaluate({"I": 64})
        fuse_all_maps(sdfg)
        after = total_movement_bytes(sdfg).evaluate({"I": 64})
        # Movement through B (write + read, 2 * 64 * 8 bytes) disappears.
        assert before - after == 2 * 64 * 8

    def test_fusion_preserves_semantics(self):
        """Fused graph produces the same access pattern on A and C."""
        sdfg = build_chain()
        ref = simulate_state(sdfg, {"I": 8})
        ref_counts = (ref.access_counts("A"), ref.access_counts("C"))
        fuse_all_maps(sdfg)
        fused = simulate_state(sdfg, {"I": 8})
        assert fused.access_counts("A") == ref_counts[0]
        assert fused.access_counts("C") == ref_counts[1]
        assert "B" not in fused.containers()

    def test_fused_equals_frontend_local_version(self):
        """Fusing the chain yields the same movement as writing it fused."""
        sdfg = build_chain()
        fuse_all_maps(sdfg)
        fused_movement = total_movement_bytes(sdfg)
        local_movement = total_movement_bytes(chain_with_transient.to_sdfg())
        assert fused_movement.evaluate({"I": 32}) == local_movement.evaluate({"I": 32})

    def test_chain_of_three(self):
        from repro.sdfg import SDFG, Memlet, dtypes

        sdfg = SDFG("chain3")
        sdfg.add_array("A", [I], dtypes.float64)
        sdfg.add_transient("T1", [I], dtypes.float64)
        sdfg.add_transient("T2", [I], dtypes.float64)
        sdfg.add_array("D", [I], dtypes.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "m1", {"i": "0:I"}, inputs={"x": Memlet("A", "i")},
            code="_out = x + 1.0", outputs={"_out": Memlet("T1", "i")},
        )
        t1 = next(n for n in state.data_nodes() if n.data == "T1")
        state.add_mapped_tasklet(
            "m2", {"i": "0:I"}, inputs={"x": Memlet("T1", "i")},
            code="_out = x * 2.0", outputs={"_out": Memlet("T2", "i")},
            input_nodes={"T1": t1},
        )
        t2 = next(n for n in state.data_nodes() if n.data == "T2")
        state.add_mapped_tasklet(
            "m3", {"i": "0:I"}, inputs={"x": Memlet("T2", "i")},
            code="_out = x - 3.0", outputs={"_out": Memlet("D", "i")},
            input_nodes={"T2": t2},
        )
        applied = fuse_all_maps(sdfg)
        assert applied == 2
        sdfg.validate()
        assert len(sdfg.start_state.map_entries()) == 1
        assert "T1" not in sdfg.arrays and "T2" not in sdfg.arrays

    def test_param_names_differ(self):
        sdfg = build_chain()  # producer uses i, consumer uses j
        fuse_all_maps(sdfg)
        state = sdfg.start_state
        entry = state.map_entries()[0]
        assert entry.map.params == ["i"]
        # Consumer's memlets now reference i.
        for _, memlet in state.all_memlets():
            assert "j" not in memlet.free_symbols()


def build_chain_of(n: int):
    """A -> n maps through n-1 transients -> OUT (n-1 fusion opportunities)."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG(f"chain{n}")
    sdfg.add_array("A", [I], dtypes.float64)
    for k in range(1, n):
        sdfg.add_transient(f"T{k}", [I], dtypes.float64)
    sdfg.add_array("OUT", [I], dtypes.float64)
    state = sdfg.add_state()
    prev = "A"
    prev_node = None
    names = [f"T{k}" for k in range(1, n)] + ["OUT"]
    for index, dst in enumerate(names):
        kwargs = {} if prev_node is None else {"input_nodes": {prev: prev_node}}
        state.add_mapped_tasklet(
            f"m{index}", {"i": "0:I"},
            inputs={"x": Memlet(prev, "i")}, code="_out = x + 1.0",
            outputs={"_out": Memlet(dst, "i")}, **kwargs,
        )
        prev = dst
        prev_node = next(n_ for n_ in state.data_nodes() if n_.data == dst)
    return sdfg


class TestRoundCap:
    """fuse_all_maps must not silently stop at its round cap."""

    def test_cap_warns_and_reports(self):
        from repro.obs import MetricsRegistry
        from repro.transforms import FusionResult

        sdfg = build_chain_of(5)  # four opportunities, cap at two rounds
        metrics = MetricsRegistry()
        with pytest.warns(RuntimeWarning, match="round cap"):
            result = fuse_all_maps(sdfg, max_rounds=2, metrics=metrics)
        assert isinstance(result, FusionResult)
        assert result == 2  # int-compatible: fusions applied
        assert result.rounds == 2
        assert result.capped
        assert (
            metrics.counter("transforms.fusion.rounds_capped").value == 1
        )

    def test_converged_run_not_capped(self):
        import warnings as warnings_mod

        from repro.obs import MetricsRegistry

        sdfg = build_chain_of(3)
        metrics = MetricsRegistry()
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            result = fuse_all_maps(sdfg, metrics=metrics)
        assert result == 2
        assert not result.capped
        # Converged: the last round found nothing, so rounds = applied + 1.
        assert result.rounds == 3
        assert (
            metrics.counter("transforms.fusion.rounds_capped").value == 0
        )

    def test_capped_graph_still_valid(self):
        sdfg = build_chain_of(5)
        with pytest.warns(RuntimeWarning):
            fuse_all_maps(sdfg, max_rounds=1)
        sdfg.validate()
        # Resuming finishes the job without a warning.
        more = fuse_all_maps(sdfg)
        assert int(more) > 0
        assert len(sdfg.start_state.map_entries()) == 1
