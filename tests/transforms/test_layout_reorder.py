"""Tests for layout permutation, stride padding and loop reorder."""

import pytest

from repro.errors import TransformError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.simulation import MemoryModel, simulate_state
from repro.simulation.stackdist import line_trace
from repro.transforms import pad_strides_to_multiple, permute_array_layout, reorder_map
from repro.symbolic import Integer, symbols

I, J, K = symbols("I J K")


@program
def sweep3d(A: float64[I, J, K], B: float64[I, J, K]):
    for i, j, k in pmap(I, J, K):
        B[i, j, k] = A[i, j, k] * 2.0


class TestPermuteLayout:
    def test_descriptor_updated(self):
        sdfg = sweep3d.to_sdfg()
        permute_array_layout(sdfg, "A", [2, 0, 1])
        desc = sdfg.arrays["A"]
        assert desc.shape == (K, I, J)
        assert desc.is_c_contiguous()

    def test_memlets_rewritten(self):
        sdfg = sweep3d.to_sdfg()
        permute_array_layout(sdfg, "A", [2, 0, 1])
        state = sdfg.start_state
        inner = [
            m for _, m in state.all_memlets()
            if m.data == "A" and m.subset.is_point
        ]
        assert inner
        for memlet in inner:
            assert str(memlet.subset) == "k, i, j"
        sdfg.validate()

    def test_access_pattern_consistent(self):
        """Same logical accesses, different physical addresses."""
        sdfg = sweep3d.to_sdfg()
        env = {"I": 3, "J": 4, "K": 2}
        before = simulate_state(sdfg, env).total_accesses("A")
        permute_array_layout(sdfg, "A", [2, 0, 1])
        after_result = simulate_state(sdfg, env)
        assert after_result.total_accesses("A") == before
        # The permuted container's shape follows the new dimension order.
        assert after_result.shape("A") == (2, 3, 4)

    def test_improves_contiguity_for_k_innermost(self):
        """With k the innermost loop, [K,I,J] layout strides worse than
        [I,J,K]; permuting A to k-last-major keeps consecutive iterations
        on the same cache line."""
        sdfg = sweep3d.to_sdfg()
        env = {"I": 4, "J": 4, "K": 8}
        result = simulate_state(sdfg, env)
        memory = MemoryModel(sdfg, env, line_size=64)
        events_a = [e for e in result.events if e.data == "A"]
        lines_before = line_trace(events_a, memory)
        switches_before = sum(1 for a, b in zip(lines_before, lines_before[1:]) if a != b)

        permute_array_layout(sdfg, "A", [2, 0, 1])  # K becomes outermost dim
        result2 = simulate_state(sdfg, env)
        memory2 = MemoryModel(sdfg, env, line_size=64)
        events2 = [e for e in result2.events if e.data == "A"]
        lines_after = line_trace(events2, memory2)
        switches_after = sum(1 for a, b in zip(lines_after, lines_after[1:]) if a != b)
        # k is the innermost loop but the slowest dimension after the
        # permutation: line switches increase — direction matters.
        assert switches_after != switches_before

    def test_invalid_permutation(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError):
            permute_array_layout(sdfg, "A", [0, 0, 1])

    def test_non_array(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError):
            permute_array_layout(sdfg, "missing", [0])


class TestPadStrides:
    def test_row_padding(self):
        from repro.sdfg import SDFG, dtypes

        sdfg = SDFG("pad")
        sdfg.add_array("A", [4, 12], dtypes.float64)
        pad_strides_to_multiple(sdfg, "A", 8)  # 64B lines of doubles
        desc = sdfg.arrays["A"]
        assert desc.strides[0] == Integer(16)  # 12 -> 16
        assert desc.strides[1] == Integer(1)

    def test_outer_strides_recomputed(self):
        from repro.sdfg import SDFG, dtypes

        sdfg = SDFG("pad3")
        sdfg.add_array("A", [2, 4, 12], dtypes.float64)
        pad_strides_to_multiple(sdfg, "A", 8, dim=1)
        desc = sdfg.arrays["A"]
        assert desc.strides == (Integer(64), Integer(16), Integer(1))

    def test_rows_become_line_aligned(self):
        sdfg = sweep3d.to_sdfg()
        env = {"I": 2, "J": 3, "K": 12}
        pad_strides_to_multiple(sdfg, "A", 8)
        memory = MemoryModel(sdfg, env, line_size=64)
        layout = memory.layout("A")
        for i in range(2):
            for j in range(3):
                assert layout.element_address((i, j, 0)) % 64 == 0

    def test_already_aligned_unchanged(self):
        from repro.sdfg import SDFG, dtypes

        sdfg = SDFG("noop")
        sdfg.add_array("A", [4, 16], dtypes.float64)
        pad_strides_to_multiple(sdfg, "A", 8)
        assert sdfg.arrays["A"].strides[0] == Integer(16)

    def test_1d_rejected(self):
        from repro.sdfg import SDFG, dtypes

        sdfg = SDFG("one")
        sdfg.add_array("A", [4], dtypes.float64)
        with pytest.raises(TransformError):
            pad_strides_to_multiple(sdfg, "A", 8)

    def test_bad_multiple(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError):
            pad_strides_to_multiple(sdfg, "A", 0)

    def test_innermost_dim_rejected(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError):
            pad_strides_to_multiple(sdfg, "A", 8, dim=2)


class TestReorderMap:
    def get_entry(self, sdfg):
        return sdfg.start_state.map_entries()[0]

    def test_by_indices(self):
        sdfg = sweep3d.to_sdfg()
        entry = self.get_entry(sdfg)
        reorder_map(entry, [2, 0, 1])
        assert entry.map.params == ["k", "i", "j"]
        assert entry.exit_node.map.params == ["k", "i", "j"]

    def test_by_names(self):
        sdfg = sweep3d.to_sdfg()
        entry = self.get_entry(sdfg)
        reorder_map(entry, ["k", "i", "j"])
        assert entry.map.params == ["k", "i", "j"]
        assert str(entry.map.ranges[0]) == "0:K"

    def test_changes_playback_order_not_accesses(self):
        sdfg = sweep3d.to_sdfg()
        env = {"I": 2, "J": 2, "K": 3}
        before = simulate_state(sdfg, env)
        first_before = [e.indices for e in before.events if e.data == "A"][:3]
        reorder_map(self.get_entry(sdfg), ["k", "i", "j"])
        after = simulate_state(sdfg, env)
        first_after = [e.indices for e in after.events if e.data == "A"][:3]
        assert first_before == [(0, 0, 0), (0, 0, 1), (0, 0, 2)]
        # After reorder, j is innermost: A[0,0,0], A[0,1,0], A[1,0,0]...
        assert first_after == [(0, 0, 0), (0, 1, 0), (1, 0, 0)]
        assert before.access_counts("A") == after.access_counts("A")

    def test_invalid_order(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError):
            reorder_map(self.get_entry(sdfg), [0, 0, 1])

    def test_unknown_name(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError):
            reorder_map(self.get_entry(sdfg), ["x", "y", "z"])


class TestUpfrontValidation:
    """Rejected calls must leave the SDFG byte-identical (no corruption)."""

    def fingerprint(self, sdfg):
        from repro.sdfg.serialize import sdfg_fingerprint

        return sdfg_fingerprint(sdfg)

    def test_pad_float_multiple_rejected(self):
        sdfg = sweep3d.to_sdfg()
        before = self.fingerprint(sdfg)
        with pytest.raises(TransformError, match="integer"):
            pad_strides_to_multiple(sdfg, "A", 2.5)
        assert self.fingerprint(sdfg) == before

    def test_pad_bool_multiple_rejected(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError, match="integer"):
            pad_strides_to_multiple(sdfg, "A", True)

    def test_pad_float_dim_rejected(self):
        sdfg = sweep3d.to_sdfg()
        before = self.fingerprint(sdfg)
        with pytest.raises(TransformError, match="integer"):
            pad_strides_to_multiple(sdfg, "A", 8, dim=1.0)
        assert self.fingerprint(sdfg) == before

    def test_permute_wrong_length_rejected(self):
        sdfg = sweep3d.to_sdfg()
        before = self.fingerprint(sdfg)
        with pytest.raises(TransformError, match="length"):
            permute_array_layout(sdfg, "A", [1, 0])
        assert self.fingerprint(sdfg) == before

    def test_permute_float_entries_rejected(self):
        sdfg = sweep3d.to_sdfg()
        before = self.fingerprint(sdfg)
        with pytest.raises(TransformError, match="integers"):
            permute_array_layout(sdfg, "A", [0.0, 1.0, 2.0])
        assert self.fingerprint(sdfg) == before

    def test_permute_bool_entries_rejected(self):
        sdfg = sweep3d.to_sdfg()
        with pytest.raises(TransformError, match="integers"):
            permute_array_layout(sdfg, "A", [False, True, 2])

    def test_failed_call_leaves_memlets_intact(self):
        """No half-rewritten graph: a rejected permute keeps every memlet."""
        sdfg = sweep3d.to_sdfg()
        before = [
            (m.data, str(m.subset))
            for _, m in sdfg.start_state.all_memlets()
        ]
        with pytest.raises(TransformError):
            permute_array_layout(sdfg, "A", [2, 1])
        after = [
            (m.data, str(m.subset))
            for _, m in sdfg.start_state.all_memlets()
        ]
        assert before == after
        sdfg.validate()
