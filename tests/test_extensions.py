"""Tests for the Discussion-section extensions (paper Section VIII).

- Hardware-specific cache back-end: the set-associative three-way miss
  taxonomy (cold / capacity / conflict).
- Full-size parameterization: tile aggregation of per-element values.
- Orthogonal profiling metrics: measured overlays from instrumented
  executions.
"""

import numpy as np
import pytest

from repro.analysis.profiling import profile_execution
from repro.errors import VisualizationError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.simulation import (
    MissKind,
    classify_three_way,
    count_three_way,
    simulate_lru,
    simulate_set_associative,
)
from repro.tool import Session
from repro.viz.containerview import aggregate_tiles, render_container_aggregated
from repro.viz.heatmap import Heatmap
from repro.symbolic import symbols

I, J = symbols("I J")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


class TestThreeWayClassification:
    def test_cold_on_first_touch(self):
        kinds = classify_three_way([1, 2, 3], num_sets=2, ways=1)
        assert kinds == [MissKind.COLD] * 3

    def test_conflict_detected(self):
        # Lines 0 and 4 both map to set 0 of a 4-set direct-mapped cache;
        # a fully-associative cache of 4 lines would keep both.
        kinds = classify_three_way([0, 4, 0, 4], num_sets=4, ways=1)
        assert kinds == [
            MissKind.COLD, MissKind.COLD, MissKind.CONFLICT, MissKind.CONFLICT,
        ]

    def test_capacity_attributed(self):
        # Working set of 3 lines through a 2-line cache (1 set, 2 ways):
        # every revisit also misses in the fully-associative model.
        kinds = classify_three_way([1, 2, 3, 1, 2, 3], num_sets=1, ways=2)
        assert kinds[3:] == [MissKind.CAPACITY] * 3

    def test_counts_sum(self):
        lines = [0, 4, 0, 1, 2, 4, 0]
        counts = count_three_way(lines, num_sets=4, ways=1)
        assert counts.total == len(lines)
        assert counts.misses == sum(simulate_set_associative(lines, 4, 1))

    def test_hits_are_sa_hits(self):
        lines = [1, 1, 1]
        counts = count_three_way(lines, num_sets=2, ways=2)
        assert counts.hits == 2 and counts.cold == 1 and counts.conflict == 0

    def test_full_associativity_has_no_conflicts(self):
        rng = np.random.default_rng(0)
        lines = list(rng.integers(0, 16, size=200))
        counts = count_three_way(lines, num_sets=1, ways=8)
        assert counts.conflict == 0
        assert counts.misses == sum(simulate_lru(lines, 8))

    def test_session_backend(self):
        session = Session(outer_product)
        lv = session.local_view({"I": 8, "J": 16}, line_size=64)
        sa = lv.miss_counts_set_associative(num_sets=2, ways=2)
        fa = lv.miss_counts()
        assert set(sa) == set(fa)
        for name in sa:
            assert sa[name].total == fa[name].total
            # Conflicts only exist in the set-associative taxonomy.
            assert fa[name].conflict == 0


class TestPaperJustification:
    def test_capacity_dominates_conflicts_on_case_study_traces(self):
        """McKinley/Temam & Beyls/D'Hollander (paper Section V-F): in
        low-associativity caches most misses are capacity, not conflict —
        the justification for the fully-associative model.  Check it on
        the hdiff trace."""
        from repro.apps import hdiff
        from repro.simulation.stackdist import line_trace

        session = Session(hdiff.build_sdfg())
        lv = session.local_view(hdiff.LOCAL_VIEW_SIZES, line_size=64)
        lines = line_trace(lv.result.events, lv.memory)
        counts = count_three_way(lines, num_sets=4, ways=2)
        assert counts.capacity > counts.conflict


class TestTileAggregation:
    def test_sum_aggregation(self):
        values = {(0, 0): 1.0, (0, 1): 2.0, (1, 0): 3.0, (3, 3): 5.0}
        shape, tiled = aggregate_tiles((4, 4), values, (2, 2))
        assert shape == (2, 2)
        assert tiled[(0, 0)] == 6.0
        assert tiled[(1, 1)] == 5.0
        assert (0, 1) not in tiled  # empty tile omitted

    def test_mean_and_max(self):
        values = {(0,): 2.0, (1,): 4.0}
        _, mean_tiled = aggregate_tiles((4,), values, (2,), reduce="mean")
        _, max_tiled = aggregate_tiles((4,), values, (2,), reduce="max")
        assert mean_tiled[(0,)] == 3.0
        assert max_tiled[(0,)] == 4.0

    def test_uneven_division_rounds_up(self):
        shape, _ = aggregate_tiles((5, 3), {(4, 2): 1.0}, (2, 2))
        assert shape == (3, 2)

    def test_rank_mismatch(self):
        with pytest.raises(VisualizationError):
            aggregate_tiles((4, 4), {}, (2,))

    def test_invalid_tile(self):
        with pytest.raises(VisualizationError):
            aggregate_tiles((4,), {}, (0,))

    def test_unknown_reduce(self):
        with pytest.raises(VisualizationError):
            aggregate_tiles((4,), {}, (2,), reduce="median")

    def test_render_full_size_view(self):
        import xml.etree.ElementTree as ET

        session = Session(outer_product)
        lv = session.local_view({"I": 32, "J": 32})
        counts = {k: float(v) for k, v in lv.access_heatmap("C").items()}
        svg = lv.render_container_aggregated("C", counts, tile=(8, 8))
        ET.fromstring(svg)
        assert "8x8 tiles" in svg

    def test_aggregation_preserves_total(self):
        session = Session(outer_product)
        lv = session.local_view({"I": 16, "J": 16})
        counts = {k: float(v) for k, v in lv.access_heatmap("A").items()}
        _, tiled = aggregate_tiles((16,), counts, (4,))
        assert sum(tiled.values()) == sum(counts.values())


class TestProfilingOverlay:
    def make_report(self, env=None):
        env = env or {"I": 4, "J": 3}
        sdfg = outer_product.to_sdfg()
        rng = np.random.default_rng(1)
        arrays = {
            "A": rng.random(env["I"]),
            "B": rng.random(env["J"]),
            "C": np.zeros((env["I"], env["J"])),
        }
        report = profile_execution(sdfg, arrays, env)
        return sdfg, arrays, report

    def test_execution_counts_match_iteration_space(self):
        sdfg, arrays, report = self.make_report()
        assert report.total_executions() == 4 * 3
        tasklet = sdfg.start_state.tasklets()[0]
        assert report.tasklet_executions[tasklet] == 12

    def test_execution_also_computes(self):
        sdfg, arrays, report = self.make_report()
        np.testing.assert_allclose(arrays["C"], np.outer(arrays["A"], arrays["B"]))

    def test_measured_ops_match_static_for_regular_programs(self):
        from repro.analysis import program_ops

        sdfg, _, report = self.make_report()
        static_total = program_ops(sdfg).evaluate({"I": 4, "J": 3})
        measured_total = sum(report.measured_ops().values())
        assert measured_total == static_total

    def test_measured_edge_accesses_feed_heatmap(self):
        sdfg, _, report = self.make_report()
        state = sdfg.start_state
        edge_values = report.measured_edge_accesses(state)
        assert edge_values  # tasklet-adjacent edges measured
        hm = Heatmap(edge_values, method="mean")
        assert len(hm.assignments()) == len(edge_values)
        # Every measured edge moved exactly one element per execution.
        assert set(edge_values.values()) == {12.0}

    def test_time_heatmap_nonnegative(self):
        _, _, report = self.make_report()
        times = report.time_heatmap()
        assert times
        assert all(t >= 0 for t in times.values())
