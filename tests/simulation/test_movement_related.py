"""Tests for physical-movement estimation and related accesses."""

import pytest

from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.simulation import (
    CacheModel,
    MemoryModel,
    container_physical_movement,
    edge_physical_movement,
    related_access_counts,
    simulate_state,
)
from repro.simulation.movement import per_container_misses, per_element_misses
from repro.symbolic import symbols

I, J, K = symbols("I J K")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@program
def sweep_rows(A: float64[I, J], B: float64[I, J]):
    for i, j in pmap(I, J):
        B[i, j] = A[i, j] * 2.0


def simulate(prog, env):
    sdfg = prog.to_sdfg()
    result = simulate_state(sdfg, env)
    memory = MemoryModel(sdfg, env, line_size=64)
    return sdfg, result, memory


class TestContainerMisses:
    def test_streaming_misses_once_per_line(self):
        # 8x8 doubles = 8 lines per container; streaming access with a big
        # cache => cold misses only, one per line.
        sdfg, result, memory = simulate(sweep_rows, {"I": 8, "J": 8})
        model = CacheModel(line_size=64, capacity_lines=1024)
        misses = per_container_misses(result.events, memory, model)
        assert misses["A"].cold == 8
        assert misses["A"].capacity == 0
        assert misses["B"].cold == 8

    def test_small_cache_causes_capacity_misses(self):
        sdfg, result, memory = simulate(outer_product, {"I": 8, "J": 64})
        # B rows: 64 doubles = 8 lines; cache of 2 lines thrashes B.
        model = CacheModel(line_size=64, capacity_lines=2)
        misses = per_container_misses(result.events, memory, model)
        assert misses["B"].capacity > 0

    def test_big_cache_no_capacity_misses(self):
        sdfg, result, memory = simulate(outer_product, {"I": 8, "J": 8})
        model = CacheModel(line_size=64, capacity_lines=10_000)
        misses = per_container_misses(result.events, memory, model)
        for counts in misses.values():
            assert counts.capacity == 0

    def test_per_element_misses(self):
        sdfg, result, memory = simulate(sweep_rows, {"I": 4, "J": 8})
        model = CacheModel(line_size=64, capacity_lines=1024)
        elem = per_element_misses(result.events, memory, model, "A")
        # First element of each 8-double row is the cold miss.
        assert elem[(0, 0)].cold == 1
        assert elem[(0, 1)].cold == 0
        assert elem[(0, 1)].hits == 1


class TestPhysicalMovement:
    def test_streaming_volume_is_container_size(self):
        sdfg, result, memory = simulate(sweep_rows, {"I": 8, "J": 8})
        model = CacheModel(line_size=64, capacity_lines=1024)
        moved = container_physical_movement(result.events, memory, model)
        # 8x8 doubles = 512 bytes: each line fetched exactly once.
        assert moved["A"] == 512
        assert moved["B"] == 512

    def test_physical_at_most_logical(self):
        sdfg, result, memory = simulate(outer_product, {"I": 8, "J": 8})
        model = CacheModel(line_size=64, capacity_lines=1024)
        moved = container_physical_movement(result.events, memory, model)
        logical_a = result.total_accesses("A") * 8
        assert moved["A"] <= logical_a

    def test_edge_movement_keys(self):
        sdfg, result, memory = simulate(outer_product, {"I": 4, "J": 4})
        model = CacheModel(line_size=64, capacity_lines=64)
        state = sdfg.start_state
        edge_est = edge_physical_movement(state, result.events, memory, model)
        assert len(edge_est) == len(list(state.all_memlets()))
        assert all(v >= 0 for v in edge_est.values())

    def test_movement_shrinks_with_bigger_cache(self):
        sdfg, result, memory = simulate(outer_product, {"I": 8, "J": 64})
        small = container_physical_movement(
            result.events, memory, CacheModel(64, 2)
        )
        large = container_physical_movement(
            result.events, memory, CacheModel(64, 4096)
        )
        assert large["B"] <= small["B"]


class TestRelatedAccesses:
    def test_outer_product_related(self):
        # Fig. 4c: selecting C[i0, :] relates A[i0] and all of B.
        sdfg = outer_product.to_sdfg()
        result = simulate_state(sdfg, {"I": 4, "J": 3})
        counts = related_access_counts(
            result, [("C", (2, 0)), ("C", (2, 1)), ("C", (2, 2))]
        )
        assert counts[("A", (2,))] == 3  # A[2] in all 3 executions
        assert counts[("B", (0,))] == 1
        assert counts[("B", (1,))] == 1
        assert ("A", (0,)) not in counts

    def test_restrict_to_container(self):
        sdfg = outer_product.to_sdfg()
        result = simulate_state(sdfg, {"I": 2, "J": 2})
        counts = related_access_counts(result, [("B", (0,))], data="C")
        assert set(k[0] for k in counts) == {"C"}
        assert counts[("C", (0, 0))] == 1
        assert counts[("C", (1, 0))] == 1

    def test_empty_selection(self):
        sdfg = outer_product.to_sdfg()
        result = simulate_state(sdfg, {"I": 2, "J": 2})
        assert related_access_counts(result, []) == {}
