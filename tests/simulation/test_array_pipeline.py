"""Differential tests: array-native locality pipeline vs. the object pipeline.

The array pipeline (ArrayTrace + NumPy kernels) must produce *exactly*
the same distances, miss labels and per-element aggregates as the
per-event object pipeline, on the example apps and on random affine
programs.  It must also never force the lazy event trace to materialize.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.apps import bert, conv, hdiff, linalg
from repro.simulation import (
    CacheModel,
    MemoryModel,
    build_array_trace,
    container_physical_movement,
    container_physical_movement_array,
    count_misses,
    count_misses_array,
    element_stack_distances,
    miss_masks,
    per_container_misses,
    per_container_misses_array,
    per_element_misses,
    per_element_misses_array,
    simulate_state,
    stack_distances,
    stack_distances_array,
)
from repro.simulation.arrays import element_distance_lists, per_container_outcomes
from repro.simulation.cache import MissCounts, MissKind, classify_three_way
from repro.simulation.stackdist import line_trace

from tests.simulation.test_vectorized_differential import (
    random_programs,
    single_map_sdfg,
)

APP_CASES = [
    pytest.param(hdiff.build_sdfg, hdiff.LOCAL_VIEW_SIZES, id="hdiff"),
    pytest.param(conv.build_conv, conv.FIG4_SIZES, id="conv"),
    pytest.param(linalg.build_matmul, {"I": 5, "J": 4, "K": 3}, id="matmul"),
    pytest.param(
        bert.build_sdfg,
        {"B": 1, "H": 2, "SM": 2, "EMB": 2, "FF": 2, "P": 2},
        id="bert",
    ),
]


def pipeline_inputs(sdfg, sizes, line_size=64):
    result = simulate_state(sdfg, sizes, fast=True)
    memory = MemoryModel(sdfg, sizes, line_size=line_size)
    trace = build_array_trace(result, memory)
    return result, memory, trace


def assert_pipelines_agree(sdfg, sizes, capacity_lines=16):
    result, memory, trace = pipeline_inputs(sdfg, sizes)
    model = CacheModel(line_size=64, capacity_lines=capacity_lines)
    if trace is None:
        return None  # interpreted portions: object pipeline only
    assert not result.events_materialized(), (
        "building the array trace must not materialize AccessEvents"
    )
    ref_lines = line_trace(result.events, memory)
    assert trace.lines.dtype == np.int64
    assert trace.lines.tolist() == ref_lines

    dist_ref = stack_distances(ref_lines)
    dist_arr = stack_distances_array(trace.lines)
    assert dist_arr.tolist() == dist_ref

    assert count_misses_array(dist_arr, model) == count_misses(dist_ref, model)

    pc_ref = per_container_misses(result.events, memory, model, dist_ref)
    pc_arr = per_container_misses_array(trace, dist_arr, model)
    assert pc_arr == pc_ref
    assert list(pc_arr) == list(pc_ref)  # first-access container order

    for name in trace.containers:
        pe_ref = per_element_misses(result.events, memory, model, name, dist_ref)
        pe_arr = per_element_misses_array(trace, dist_arr, model, name)
        assert pe_arr == pe_ref

    ed_ref = element_stack_distances(result.events, memory, distances=dist_ref)
    ed_arr = element_distance_lists(trace, dist_arr)
    assert ed_arr == ed_ref

    mv_ref = container_physical_movement(result.events, memory, model, dist_ref)
    mv_arr = container_physical_movement_array(trace, dist_arr, model)
    assert mv_arr == mv_ref
    return trace


class TestExampleApps:
    @pytest.mark.parametrize("build, sizes", APP_CASES)
    def test_full_pipeline_equality(self, build, sizes):
        trace = assert_pipelines_agree(build(), sizes)
        assert trace is not None, "example apps must take the array path"

    @pytest.mark.parametrize("capacity", [1, 4, 64, 4096])
    def test_capacity_sweep_on_hdiff(self, capacity):
        assert_pipelines_agree(
            hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES, capacity_lines=capacity
        )

    def test_single_container_query(self):
        sdfg = hdiff.build_sdfg()
        result, memory, trace = pipeline_inputs(sdfg, hdiff.LOCAL_VIEW_SIZES)
        dist = stack_distances_array(trace.lines)
        for name in trace.containers:
            ref = element_stack_distances(
                result.events, memory, data=name, distances=dist.tolist()
            )
            assert element_distance_lists(trace, dist, data=name) == ref

    def test_unknown_container_is_empty(self):
        _, _, trace = pipeline_inputs(hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES)
        model = CacheModel(64, 16)
        dist = stack_distances_array(trace.lines)
        assert per_element_misses_array(trace, dist, model, "nope") == {}


class TestArrayTraceConstruction:
    def test_interpreted_trace_returns_none(self):
        # i*i is non-affine: the vectorized path falls back in-scope and
        # records no strided blocks, so no array trace exists.
        sdfg = single_map_sdfg(["i*i, j"], {"i": "0:4", "j": "0:3"})
        result = simulate_state(sdfg, {}, fast=True)
        memory = MemoryModel(sdfg, {}, line_size=64)
        assert not result.vector_blocks
        assert build_array_trace(result, memory) is None

    def test_interpreter_result_returns_none(self):
        sdfg = hdiff.build_sdfg()
        result = simulate_state(sdfg, hdiff.LOCAL_VIEW_SIZES, fast=False)
        memory = MemoryModel(sdfg, hdiff.LOCAL_VIEW_SIZES, line_size=64)
        assert build_array_trace(result, memory) is None

    def test_containers_in_first_access_order(self):
        result, _, trace = pipeline_inputs(hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES)
        seen: list[str] = []
        for event in result.events:
            if event.data not in seen:
                seen.append(event.data)
        assert trace.containers == seen

    def test_unflatten_roundtrip(self):
        result, _, trace = pipeline_inputs(hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES)
        for container, name in enumerate(trace.containers):
            member = np.flatnonzero(trace.container_ids == container)
            tuples = trace.unflatten_keys(container, trace.element_keys[member])
            events = [e for e in result.events if e.data == name]
            assert tuples == [e.indices for e in events]


class TestMissMasks:
    def test_masks_match_enum_classification(self):
        model = CacheModel(64, 4)
        d = np.array([np.inf, 0.0, 3.0, 4.0, 100.0, np.inf])
        cold, capacity = miss_masks(d, model)
        for value, is_cold, is_cap in zip(d.tolist(), cold, capacity):
            kind = model.classify(value)
            assert bool(is_cold) == (kind is MissKind.COLD)
            assert bool(is_cap) == (kind is MissKind.CAPACITY)


class TestSetAssociativeOutcomes:
    def test_per_container_outcomes_match_event_loop(self):
        result, memory, trace = pipeline_inputs(
            hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES
        )
        kinds = classify_three_way(trace.lines.tolist(), num_sets=8, ways=2)
        ref: dict[str, MissCounts] = {}
        for event, kind in zip(result.events, kinds):
            counts = ref.setdefault(event.data, MissCounts())
            if kind is MissKind.HIT:
                counts.hits += 1
            elif kind is MissKind.COLD:
                counts.cold += 1
            elif kind is MissKind.CAPACITY:
                counts.capacity += 1
            else:
                counts.conflict += 1
        assert per_container_outcomes(trace, kinds) == ref


class TestLazyMaterialization:
    def test_events_stay_lazy_until_asked(self):
        result, memory, trace = pipeline_inputs(
            hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES
        )
        model = CacheModel(64, 16)
        dist = stack_distances_array(trace.lines)
        per_container_misses_array(trace, dist, model)
        element_distance_lists(trace, dist)
        assert not result.events_materialized()
        assert len(result.events) == result.num_events
        assert result.events_materialized()

    def test_materialized_events_match_interpreter(self):
        sizes = {"I": 4, "J": 4, "K": 3}
        fast = simulate_state(hdiff.build_sdfg(), sizes, fast=True)
        slow = simulate_state(hdiff.build_sdfg(), sizes, fast=False)
        memory = MemoryModel(fast.sdfg, sizes, line_size=64)
        build_array_trace(fast, memory)  # array queries first...
        key = lambda e: (e.data, e.indices, e.kind, e.step, e.execution)
        # ...then the object trace still materializes correctly.
        assert [key(e) for e in fast.events] == [key(e) for e in slow.events]


class TestRandomPrograms:
    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_random_program_pipelines_agree(self, sdfg):
        assert_pipelines_agree(sdfg, {}, capacity_lines=4)

    @given(random_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_program_element_lists_agree(self, sdfg):
        result, memory, trace = pipeline_inputs(sdfg, {})
        if trace is None:
            return
        dist = stack_distances_array(trace.lines)
        ref = element_stack_distances(
            result.events, memory, distances=dist.tolist()
        )
        assert element_distance_lists(trace, dist) == ref
