"""Tests for physical layout and the memory model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sdfg import SDFG, Array, Scalar, dtypes
from repro.simulation import MemoryModel, PhysicalLayout
from repro.symbolic import symbols

I, J = symbols("I J")


class TestPhysicalLayout:
    def test_row_major_addresses(self):
        layout = PhysicalLayout(Array(dtypes.float32, [4, 5]))
        assert layout.element_address((0, 0)) == 0
        assert layout.element_address((0, 1)) == 4
        assert layout.element_address((1, 0)) == 20

    def test_column_major_addresses(self):
        desc = Array(dtypes.float32, [4, 5], strides=Array.f_strides([4, 5]))
        layout = PhysicalLayout(desc)
        assert layout.element_address((1, 0)) == 4
        assert layout.element_address((0, 1)) == 16

    def test_symbolic_shape(self):
        layout = PhysicalLayout(Array(dtypes.float64, [I, J]), {"I": 3, "J": 4})
        assert layout.shape == (3, 4)
        assert layout.element_address((2, 3)) == (2 * 4 + 3) * 8

    def test_base_address(self):
        layout = PhysicalLayout(Array(dtypes.float64, [4]), base_address=128)
        assert layout.element_address((0,)) == 128

    def test_start_offset(self):
        layout = PhysicalLayout(Array(dtypes.float64, [4], start_offset=2))
        assert layout.element_address((0,)) == 16

    def test_cache_line_of(self):
        layout = PhysicalLayout(Array(dtypes.float32, [4, 5]))
        # 64B lines hold 16 float32s.
        assert layout.cache_line_of((0, 0), 64) == 0
        assert layout.cache_line_of((3, 0), 64) == 0  # element 15
        assert layout.cache_line_of((3, 1), 64) == 1  # element 16

    def test_neighbors_in_line_row_major(self):
        layout = PhysicalLayout(Array(dtypes.float64, [4, 4]))
        # 32B lines hold 4 doubles: exactly one row.
        neighbors = layout.neighbors_in_line((1, 2), 32)
        assert neighbors == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_neighbors_in_line_column_major(self):
        desc = Array(dtypes.float64, [4, 4], strides=Array.f_strides([4, 4]))
        layout = PhysicalLayout(desc)
        neighbors = layout.neighbors_in_line((2, 1), 32)
        assert neighbors == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_line_wraps_rows(self):
        # 5-wide rows of doubles with 64B lines: line 0 holds row 0 and the
        # first 3 elements of row 1 (the Fig. 8c wrap-around effect).
        layout = PhysicalLayout(Array(dtypes.float64, [3, 5]))
        elements = layout.elements_on_line(0, 64)
        assert (0, 4) in elements and (1, 0) in elements and (1, 2) in elements
        assert (1, 3) not in elements

    def test_padded_rows_no_wrap(self):
        # Padding the row stride to 8 aligns each row to its own 64B line.
        layout = PhysicalLayout(Array(dtypes.float64, [3, 5], strides=[8, 1]))
        for row in range(3):
            line = layout.cache_line_of((row, 0), 64)
            elements = layout.elements_on_line(line, 64)
            assert all(idx[0] == row for idx in elements)

    def test_size_bytes_padded(self):
        layout = PhysicalLayout(Array(dtypes.float64, [3, 5], strides=[8, 1]))
        assert layout.size_bytes() == (2 * 8 + 4 + 1) * 8

    def test_scalar(self):
        layout = PhysicalLayout(Scalar(dtypes.float64))
        assert layout.element_address(()) == 0
        assert layout.size_bytes() == 8

    def test_wrong_rank(self):
        layout = PhysicalLayout(Array(dtypes.float64, [4, 4]))
        with pytest.raises(SimulationError):
            layout.element_address((1,))

    def test_iter_elements_row_major(self):
        layout = PhysicalLayout(Array(dtypes.float64, [2, 2]))
        assert list(layout.iter_elements()) == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestNegativeStrides:
    def test_reversed_vector_spans_full_extent(self):
        # Regression: a reversed dimension used to contribute a *negative*
        # span, collapsing size_bytes below the real allocation.
        desc = Array(dtypes.float64, [4], strides=[-1], start_offset=3)
        layout = PhysicalLayout(desc)
        assert layout.size_bytes() == 4 * 8
        assert layout.element_address((0,)) == 3 * 8
        assert layout.element_address((3,)) == 0

    def test_reversed_row_dimension(self):
        desc = Array(dtypes.float64, [3, 4], strides=[-4, 1], start_offset=8)
        layout = PhysicalLayout(desc)
        addresses = sorted(
            layout.element_address(idx) for idx in layout.iter_elements()
        )
        assert layout.size_bytes() == addresses[-1] + 8
        assert addresses[0] == 0

    def test_uncompensated_negative_stride_rejected(self):
        with pytest.raises(SimulationError):
            PhysicalLayout(Array(dtypes.float64, [4], strides=[-1]))

    def test_no_overlap_in_memory_model(self):
        sdfg = SDFG("rev")
        sdfg.add_array("R", [4], dtypes.float64, strides=[-1], start_offset=3)
        sdfg.add_array("B", [4], dtypes.float64)
        mm = MemoryModel(sdfg, line_size=64)
        r, b = mm.layout("R"), mm.layout("B")
        r_addrs = {r.element_address((i,)) for i in range(4)}
        b_addrs = {b.element_address((i,)) for i in range(4)}
        assert b.base_address >= r.end_address()
        assert not (r_addrs & b_addrs)


class TestBatchAddressing:
    def layouts(self):
        yield PhysicalLayout(Array(dtypes.float32, [4, 5]))
        yield PhysicalLayout(Array(dtypes.float64, [4, 5], strides=Array.f_strides([4, 5])))
        yield PhysicalLayout(Array(dtypes.float64, [3, 5], strides=[8, 1]), base_address=96)
        yield PhysicalLayout(Array(dtypes.float64, [4], strides=[-1], start_offset=3))

    def test_matches_scalar_addressing(self):
        for layout in self.layouts():
            matrix = np.array(list(layout.iter_elements()), dtype=np.int64)
            batch = layout.element_addresses(matrix)
            assert batch.tolist() == [
                layout.element_address(tuple(row)) for row in matrix.tolist()
            ]
            lines = layout.cache_lines_of(matrix, 64)
            assert lines.tolist() == [
                layout.cache_line_of(tuple(row), 64) for row in matrix.tolist()
            ]

    def test_scalar_container_batch(self):
        layout = PhysicalLayout(Scalar(dtypes.float64), base_address=24)
        out = layout.element_addresses(np.empty((3, 0), dtype=np.int64))
        assert out.tolist() == [24, 24, 24]

    def test_wrong_rank_rejected(self):
        layout = PhysicalLayout(Array(dtypes.float64, [4, 4]))
        with pytest.raises(SimulationError):
            layout.element_addresses(np.zeros((2, 1), dtype=np.int64))


class TestElementsOnLineArithmetic:
    """The address-range solver vs. a brute-force scan over all elements."""

    def brute_force(self, layout, line, line_size):
        return [
            idx
            for idx in layout.iter_elements()
            if layout.cache_line_of(idx, line_size) == line
        ]

    def all_lines(self, layout, line_size):
        first = layout.base_address // line_size
        last = (layout.end_address() - 1) // line_size
        return range(first, last + 2)  # one past the end: must be empty

    @pytest.mark.parametrize(
        "desc, base",
        [
            (Array(dtypes.float64, [3, 5]), 0),
            (Array(dtypes.float64, [3, 5], strides=[8, 1]), 0),
            (Array(dtypes.float64, [4, 4], strides=Array.f_strides([4, 4])), 8),
            (Array(dtypes.float32, [7], strides=[3]), 4),
            (Array(dtypes.float64, [3, 4], strides=[-4, 1], start_offset=8), 0),
        ],
        ids=["row-major", "padded", "col-major", "strided", "reversed"],
    )
    def test_matches_brute_force(self, desc, base):
        layout = PhysicalLayout(desc, base_address=base)
        for line_size in (16, 32, 64):
            for line in self.all_lines(layout, line_size):
                assert layout.elements_on_line(line, line_size) == self.brute_force(
                    layout, line, line_size
                )

    def test_empty_dimension_has_no_elements(self):
        # iter_elements would yield phantom indices here; the arithmetic
        # solver must report no resident elements for a zero-sized shape.
        layout = PhysicalLayout(Array(dtypes.float64, [2, 0, 3]))
        for line in self.all_lines(layout, 16):
            assert layout.elements_on_line(line, 16) == []

    @given(
        st.lists(st.integers(1, 5), min_size=1, max_size=3),
        st.integers(0, 3),
        st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_padded_layouts(self, shape, pad, line_size):
        strides = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * (shape[d + 1] + (pad if d == 0 else 0))
        layout = PhysicalLayout(Array(dtypes.float64, shape, strides=strides))
        for line in self.all_lines(layout, line_size):
            assert layout.elements_on_line(line, line_size) == self.brute_force(
                layout, line, line_size
            )


class TestMemoryModelMemoization:
    def test_line_queries_memoized(self):
        sdfg = SDFG("memo")
        sdfg.add_array("A", [4], dtypes.float64)
        sdfg.add_array("B", [4], dtypes.float64)
        mm = MemoryModel(sdfg, line_size=64)
        first = mm.elements_on_line(0)
        assert mm.elements_on_line(0) is first  # cached object comes back
        assert set(first) == {"A", "B"}


class TestMemoryModel:
    def make_sdfg(self):
        sdfg = SDFG("mm")
        sdfg.add_array("A", [I], dtypes.float64)
        sdfg.add_array("B", [4], dtypes.float32)
        return sdfg

    def test_sequential_placement(self):
        sdfg = self.make_sdfg()
        mm = MemoryModel(sdfg, {"I": 8}, line_size=64)
        a, b = mm.layout("A"), mm.layout("B")
        assert a.base_address == 0
        assert b.base_address >= a.end_address()

    def test_alignment_respected(self):
        sdfg = SDFG("aligned")
        sdfg.add_array("A", [3], dtypes.float64)  # 24 bytes
        sdfg.add_array("B", [4], dtypes.float64, alignment=64)
        mm = MemoryModel(sdfg, line_size=64)
        assert mm.layout("B").base_address % 64 == 0

    def test_line_queries_cross_containers(self):
        sdfg = SDFG("shared")
        sdfg.add_array("A", [4], dtypes.float64)  # 32 bytes
        sdfg.add_array("B", [4], dtypes.float64)
        mm = MemoryModel(sdfg, line_size=64)
        # Both containers fit in line 0 (A at 0-31, B at 32-63).
        on_line = mm.elements_on_line(0)
        assert set(on_line) == {"A", "B"}

    def test_unknown_container(self):
        mm = MemoryModel(self.make_sdfg(), {"I": 4})
        with pytest.raises(SimulationError):
            mm.layout("Z")

    def test_include_subset(self):
        mm = MemoryModel(self.make_sdfg(), {"I": 4}, include=["B"])
        assert list(mm.layouts) == ["B"]

    def test_total_lines(self):
        sdfg = SDFG("tl")
        sdfg.add_array("A", [16], dtypes.float64)  # 128 bytes = 2 lines
        mm = MemoryModel(sdfg, line_size=64)
        assert mm.total_lines() == 2

    def test_invalid_line_size(self):
        with pytest.raises(SimulationError):
            MemoryModel(self.make_sdfg(), {"I": 4}, line_size=0)
