"""Tests for the access-pattern simulator."""

import pytest

from repro.errors import SimulationError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.simulation import AccessKind, simulate_state
from repro.symbolic import symbols

I, J, K = symbols("I J K")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@program
def matmul(A: float64[I, K], B: float64[K, J], C: float64[I, J]):
    for i, j, k in pmap(I, J, K):
        C[i, j] += A[i, k] * B[k, j]


@program
def stencil(A: float64[I + 2], B: float64[I]):
    for i in pmap(I):
        B[i] = (A[i] + A[i + 1] + A[i + 2]) / 3.0


@program
def with_local(A: float64[I], B: float64[I]):
    for i in pmap(I):
        t = A[i] * 2.0
        B[i] = t + 1.0


class TestOuterProduct:
    def test_event_counts(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 3, "J": 4})
        # Per iteration: read A, read B, write C -> 3 events * 12 iterations.
        assert len(result.events) == 36
        assert result.total_accesses("A") == 12
        assert result.total_accesses("C") == 12

    def test_access_counts_flattened(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 3, "J": 4})
        counts_a = result.access_counts("A")
        # A[i] read once per j -> 4 accesses each.
        assert counts_a == {(0,): 4, (1,): 4, (2,): 4}
        counts_c = result.access_counts("C")
        assert all(v == 1 for v in counts_c.values())
        assert len(counts_c) == 12

    def test_kind_filter(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 2, "J": 2})
        assert result.access_counts("C", AccessKind.READ) == {}
        assert len(result.access_counts("C", AccessKind.WRITE)) == 4

    def test_steps_are_iterations(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 3, "J": 4})
        assert result.num_steps == 12
        frame = result.events_at_step(0)
        touched = {(e.data, e.indices) for e in frame}
        assert touched == {("A", (0,)), ("B", (0,)), ("C", (0, 0))}

    def test_iteration_order_row_major(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 2, "J": 3})
        writes = [e.indices for e in result.events if e.data == "C"]
        assert writes == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_shape(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 3, "J": 4})
        assert result.shape("C") == (3, 4)

    def test_containers_order(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 2, "J": 2})
        assert set(result.containers()) == {"A", "B", "C"}


class TestMatmul:
    def test_total_events(self):
        result = simulate_state(matmul.to_sdfg(), {"I": 2, "J": 3, "K": 4})
        assert len(result.events) == 3 * 2 * 3 * 4

    def test_output_accumulation_counts(self):
        result = simulate_state(matmul.to_sdfg(), {"I": 2, "J": 3, "K": 4})
        counts = result.access_counts("C", AccessKind.WRITE)
        assert all(v == 4 for v in counts.values())  # K accumulations

    def test_innermost_parameter_fastest(self):
        result = simulate_state(matmul.to_sdfg(), {"I": 2, "J": 2, "K": 3})
        a_reads = [e.indices for e in result.events if e.data == "A"][:3]
        # k varies fastest: A[0,0], A[0,1], A[0,2].
        assert a_reads == [(0, 0), (0, 1), (0, 2)]


class TestStencil:
    def test_window_reads(self):
        result = simulate_state(stencil.to_sdfg(), {"I": 4})
        frame = result.events_at_step(0)
        a_reads = sorted(e.indices for e in frame if e.data == "A")
        assert a_reads == [(0,), (1,), (2,)]

    def test_overlap_counts(self):
        result = simulate_state(stencil.to_sdfg(), {"I": 4})
        counts = result.access_counts("A")
        # Elements in the middle are read by up to 3 windows.
        assert counts[(2,)] == 3
        assert counts[(0,)] == 1
        assert counts[(5,)] == 1


class TestLocals:
    def test_transients_excluded_by_default(self):
        result = simulate_state(with_local.to_sdfg(), {"I": 4})
        assert set(result.containers()) == {"A", "B"}

    def test_transients_included_on_request(self):
        sdfg = with_local.to_sdfg()
        from repro.simulation import AccessPatternSimulator

        result = AccessPatternSimulator(sdfg, {"I": 4}, include_transients=True).run()
        assert any(c.startswith("__t") for c in result.containers())

    def test_executions_grouping(self):
        result = simulate_state(with_local.to_sdfg(), {"I": 2})
        groups = list(result.executions())
        # Two tasklets per iteration, two iterations.
        assert len(groups) == 4
        for _, events in groups:
            tasklets = {e.tasklet for e in events}
            assert len(tasklets) == 1


class TestErrors:
    def test_missing_symbols(self):
        with pytest.raises(SimulationError, match="J"):
            simulate_state(outer_product.to_sdfg(), {"I": 2})


class TestMultiKernel:
    def test_sequential_kernels_share_trace(self):
        @program
        def two(A: float64[I], B: float64[I], C: float64[I]):
            for i in pmap(I):
                B[i] = A[i] * 2.0
            for i in pmap(I):
                C[i] = B[i] + 1.0

        result = simulate_state(two.to_sdfg(), {"I": 3})
        # Kernel 1 fully precedes kernel 2 in the trace.
        b_writes = [i for i, e in enumerate(result.events)
                    if e.data == "B" and e.kind == AccessKind.WRITE]
        b_reads = [i for i, e in enumerate(result.events)
                   if e.data == "B" and e.kind == AccessKind.READ]
        assert max(b_writes) < min(b_reads)
        assert result.num_steps == 6


class TestZeroStepSubset:
    def build(self):
        from repro.sdfg import dtypes
        from repro.sdfg.memlet import Memlet
        from repro.sdfg.sdfg import SDFG

        sdfg = SDFG("zerostep")
        sdfg.add_array("A", [8], dtypes.float64)
        sdfg.add_array("B", [8], dtypes.float64)
        state = sdfg.add_state("main")
        state.add_mapped_tasklet(
            "compute",
            {"i": "0:2"},
            inputs={"a": Memlet("A", "0:4:S")},
            code="out = a",
            outputs={"out": Memlet("B", "i")},
        )
        return sdfg

    def test_interpreter_rejects_zero_step(self):
        """A symbolic memlet step evaluating to 0 must raise, not loop."""
        with pytest.raises(SimulationError, match="step evaluated to zero"):
            simulate_state(self.build(), {"S": 0}, fast=False)

    def test_fast_path_rejects_zero_step(self):
        with pytest.raises(SimulationError, match="step evaluated to zero"):
            simulate_state(self.build(), {"S": 0}, fast=True)

    def test_nonzero_step_still_works(self):
        result = simulate_state(self.build(), {"S": 2}, fast=False)
        assert result.total_accesses("A") == 4  # 2 iterations x {0, 2}


class TestFastFlag:
    def test_fast_and_slow_agree(self):
        sdfg = outer_product.to_sdfg()
        slow = simulate_state(sdfg, {"I": 3, "J": 4}, fast=False)
        fast = simulate_state(sdfg, {"I": 3, "J": 4}, fast=True)
        assert [(e.data, e.indices, e.kind, e.step, e.execution, e.tasklet, e.point)
                for e in slow.events] == \
               [(e.data, e.indices, e.kind, e.step, e.execution, e.tasklet, e.point)
                for e in fast.events]

    def test_slow_path_records_no_vector_blocks(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 2, "J": 2}, fast=False)
        assert result.vector_blocks == []

    def test_fast_path_records_vector_blocks(self):
        result = simulate_state(outer_product.to_sdfg(), {"I": 2, "J": 2}, fast=True)
        assert sum(b.count for b in result.vector_blocks) == len(result.events)
