"""Differential tests: vectorized fast path vs. the interpreter.

The correctness contract of the fast path is byte-identical traces —
same events, same order — so every test here simulates twice (``fast=
True`` and ``fast=False``) and compares full attribute tuples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import bert, conv, hdiff, linalg
from repro.sdfg import dtypes
from repro.sdfg.memlet import Memlet
from repro.sdfg.sdfg import SDFG
from repro.simulation import MemoryModel, fast_line_trace, simulate_state
from repro.simulation.stackdist import line_trace


def trace_key(events):
    return [
        (e.data, e.indices, e.kind, e.step, e.execution, e.tasklet, e.point)
        for e in events
    ]


def assert_identical_traces(sdfg, symbols, state=None, include_transients=False):
    slow = simulate_state(
        sdfg, symbols, state=state, include_transients=include_transients, fast=False
    )
    fast = simulate_state(
        sdfg, symbols, state=state, include_transients=include_transients, fast=True
    )
    assert trace_key(fast.events) == trace_key(slow.events)
    assert fast.num_steps == slow.num_steps
    assert fast.num_executions == slow.num_executions
    return slow, fast


class TestExampleApps:
    @pytest.mark.parametrize(
        "sizes",
        [hdiff.LOCAL_VIEW_SIZES, {"I": 3, "J": 3, "K": 2}],
        ids=["local-view", "tiny"],
    )
    def test_hdiff(self, sizes):
        _, fast = assert_identical_traces(hdiff.build_sdfg(), sizes)
        assert fast.vector_blocks, "hdiff memlets are affine; fast path must engage"

    @pytest.mark.parametrize(
        "sizes",
        [
            conv.FIG4_SIZES,
            {"Cout": 1, "Cin": 2, "H": 5, "W": 5, "KY": 2, "KX": 2},
        ],
        ids=["fig4", "tiny"],
    )
    def test_conv(self, sizes):
        _, fast = assert_identical_traces(conv.build_conv(), sizes)
        assert fast.vector_blocks

    @pytest.mark.parametrize(
        "sizes",
        [
            {"B": 1, "H": 2, "SM": 2, "EMB": 2, "FF": 2, "P": 2},
            {"B": 2, "H": 2, "SM": 3, "EMB": 4, "FF": 3, "P": 2},
        ],
        ids=["tiny", "small"],
    )
    def test_bert(self, sizes):
        assert_identical_traces(bert.build_sdfg(), sizes)

    @pytest.mark.parametrize(
        "sizes",
        [{"I": 3, "J": 4, "K": 2}, {"I": 5, "J": 2, "K": 3}],
        ids=["tiny", "small"],
    )
    def test_matmul(self, sizes):
        _, fast = assert_identical_traces(linalg.build_matmul(), sizes)
        assert fast.vector_blocks

    @pytest.mark.parametrize(
        "sizes", [{"M": 4, "N": 3}, {"M": 2, "N": 7}], ids=["tiny", "wide"]
    )
    def test_outer_product(self, sizes):
        assert_identical_traces(linalg.build_outer_product(), sizes)

    def test_hdiff_line_trace_matches(self):
        fast = simulate_state(hdiff.build_sdfg(), hdiff.LOCAL_VIEW_SIZES, fast=True)
        memory = MemoryModel(fast.sdfg, fast.env, line_size=64)
        assert fast_line_trace(fast, memory) == line_trace(fast.events, memory)


def single_map_sdfg(subset_strs, iteration, shape=(64, 64, 64)):
    """One mapped tasklet reading A at each subset and writing B at the first."""
    sdfg = SDFG("randprog")
    ndims = len(subset_strs[0].split(","))
    sdfg.add_array("A", list(shape[:ndims]), dtypes.float64)
    sdfg.add_array("B", list(shape[:ndims]), dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "compute",
        iteration,
        inputs={
            f"a{n}": Memlet("A", s) for n, s in enumerate(subset_strs)
        },
        code="out = " + " + ".join(f"a{n}" for n in range(len(subset_strs))),
        outputs={"out": Memlet("B", subset_strs[0])},
    )
    return sdfg


class TestEdgeCases:
    def test_strided_map(self):
        sdfg = single_map_sdfg(["i, j"], {"i": "0:8:2", "j": "1:7:3"})
        assert_identical_traces(sdfg, {})

    def test_strided_memlet_block(self):
        sdfg = single_map_sdfg(["i:i+4:2, j"], {"i": "0:4", "j": "0:3"})
        _, fast = assert_identical_traces(sdfg, {})
        assert fast.vector_blocks

    def test_negative_step_memlet(self):
        sdfg = single_map_sdfg(["i+3:i:-1, j"], {"i": "0:3", "j": "0:2"})
        assert_identical_traces(sdfg, {})

    def test_zero_iteration_dimension(self):
        sdfg = single_map_sdfg(["i, j"], {"i": "0:N", "j": "0:4"})
        slow, fast = assert_identical_traces(sdfg, {"N": 0})
        assert fast.events == [] and fast.num_steps == 0

    def test_non_affine_falls_back(self):
        sdfg = single_map_sdfg(["i*i, j"], {"i": "0:4", "j": "0:3"})
        _, fast = assert_identical_traces(sdfg, {})
        # i*i is handled by the interpreter inside the vectorized scope
        # walk, so no strided vector blocks are recorded.
        assert not fast.vector_blocks

    def test_mixed_affine_and_non_affine(self):
        sdfg = single_map_sdfg(["i*i, j", "i, 2*j"], {"i": "0:4", "j": "0:3"})
        assert_identical_traces(sdfg, {})

    def test_min_max_subset_falls_back(self):
        sdfg = single_map_sdfg(["Min(i, j), Max(i, j)"], {"i": "0:4", "j": "0:4"})
        assert_identical_traces(sdfg, {})

    def test_symbolic_coefficients(self):
        sdfg = single_map_sdfg(["N*i + j, 0"], {"i": "0:3", "j": "0:N"})
        assert_identical_traces(sdfg, {"N": 4})


# -- Hypothesis: random affine map/memlet combinations -----------------------

index_exprs = st.one_of(
    # affine points: c0 + c1*i + c2*j
    st.tuples(
        st.integers(0, 3), st.integers(0, 2), st.integers(0, 2)
    ).map(lambda t: f"{t[0]} + {t[1]}*i + {t[2]}*j"),
    # affine blocks with a parameter-free extent
    st.tuples(st.integers(0, 2), st.integers(1, 3)).map(
        lambda t: f"i + {t[0]}:i + {t[0]} + {t[1]}"
    ),
    # occasionally non-affine, exercising the in-scope fallback
    st.just("i*i"),
    st.just("i*j"),
)

map_ranges = st.tuples(
    st.integers(0, 2), st.integers(1, 4), st.integers(1, 2)
).map(lambda t: f"{t[0]}:{t[0] + t[1] * t[2]}:{t[2]}")


@st.composite
def random_programs(draw):
    iteration = {"i": draw(map_ranges), "j": draw(map_ranges)}
    nsubsets = draw(st.integers(1, 3))
    subsets = [draw(index_exprs) + ", j" for _ in range(nsubsets)]
    return single_map_sdfg(subsets, iteration)


class TestRandomAffinePrograms:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_random_program_traces_identical(self, sdfg):
        assert_identical_traces(sdfg, {})

    @given(random_programs())
    @settings(max_examples=25, deadline=None)
    def test_random_program_line_traces_identical(self, sdfg):
        fast = simulate_state(sdfg, {}, fast=True)
        memory = MemoryModel(sdfg, {}, line_size=64)
        assert fast_line_trace(fast, memory) == line_trace(fast.events, memory)
