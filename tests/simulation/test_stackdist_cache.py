"""Tests for stack distances and the cache model (incl. key equivalences)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import (
    CacheModel,
    MissKind,
    classify_accesses,
    count_misses,
    simulate_lru,
    stack_distances,
    stack_distances_bruteforce,
)
from repro.simulation.cache import simulate_set_associative

INF = math.inf


class TestStackDistances:
    def test_all_cold(self):
        assert stack_distances([1, 2, 3]) == [INF, INF, INF]

    def test_immediate_reuse(self):
        assert stack_distances([1, 1]) == [INF, 0.0]

    def test_textbook_example(self):
        # Trace a b c b a: d(b@3)=1 (c), d(a@4)=2 (b, c distinct).
        dists = stack_distances([1, 2, 3, 2, 1])
        assert dists == [INF, INF, INF, 1.0, 2.0]

    def test_repeated_interleaving(self):
        dists = stack_distances([1, 2, 1, 2, 1])
        assert dists == [INF, INF, 1.0, 1.0, 1.0]

    def test_duplicates_between_counted_once(self):
        # a b b b a: only one distinct line between the two a's.
        dists = stack_distances([1, 2, 2, 2, 1])
        assert dists[-1] == 1.0

    def test_empty(self):
        assert stack_distances([]) == []


class TestBruteforceEquivalence:
    @given(st.lists(st.integers(0, 9), max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_fenwick_matches_bruteforce(self, lines):
        assert stack_distances(lines) == stack_distances_bruteforce(lines)

    @given(st.lists(st.integers(0, 3), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_small_alphabet(self, lines):
        assert stack_distances(lines) == stack_distances_bruteforce(lines)


class TestCacheModel:
    def test_classification(self):
        model = CacheModel(line_size=64, capacity_lines=4)
        assert model.classify(INF) is MissKind.COLD
        assert model.classify(3.0) is MissKind.HIT
        assert model.classify(4.0) is MissKind.CAPACITY
        assert model.classify(100.0) is MissKind.CAPACITY

    def test_count_misses(self):
        model = CacheModel(capacity_lines=2)
        counts = count_misses([INF, INF, 0.0, 2.0, 1.0], model)
        assert (counts.hits, counts.cold, counts.capacity) == (2, 2, 1)
        assert counts.misses == 3
        assert counts.miss_rate == pytest.approx(0.6)

    def test_capacity_bytes(self):
        assert CacheModel(64, 512).capacity_bytes == 32768

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            CacheModel(line_size=0)
        with pytest.raises(SimulationError):
            CacheModel(capacity_lines=0)

    def test_classify_accesses(self):
        model = CacheModel(capacity_lines=8)
        kinds = classify_accesses([INF, 1.0], model)
        assert kinds == [MissKind.COLD, MissKind.HIT]


class TestLRUSimulator:
    def test_basic(self):
        misses = simulate_lru([1, 2, 1, 3, 2], capacity_lines=2)
        assert misses == [True, True, False, True, True]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            simulate_lru([1], 0)

    @given(
        st.lists(st.integers(0, 9), max_size=200),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_threshold_model_equals_exact_lru(self, lines, capacity):
        """The paper's justification: distance >= C  <=>  LRU miss.

        This is the McKinley/Temam & Beyls/D'Hollander argument for
        estimating misses from stack distances under full associativity.
        """
        model = CacheModel(capacity_lines=capacity)
        predicted = [model.classify(d).is_miss for d in stack_distances(lines)]
        assert predicted == simulate_lru(lines, capacity)

    def test_conflict_misses_on_same_set_pattern(self):
        """Lines mapping to one set conflict even in an underfull cache."""
        # Lines 0 and 4 both map to set 0 of a 4-set direct-mapped cache.
        lines = [0, 4, 0, 4]
        sa = simulate_set_associative(lines, num_sets=4, ways=1)
        fa = simulate_lru(lines, capacity_lines=4)
        assert sum(sa) == 4  # every access conflicts
        assert sum(fa) == 2  # fully associative: both fit
        assert sum(sa) > sum(fa)

    def test_fully_associative_is_one_set(self):
        lines = [1, 5, 1, 9, 5, 1]
        assert simulate_set_associative(lines, 1, 3) == simulate_lru(lines, 3)

    @given(
        st.lists(st.integers(0, 15), max_size=150),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=150, deadline=None)
    def test_one_set_equals_lru(self, lines, ways):
        """A single set holding *ways* lines IS a fully-associative LRU
        cache of that capacity — the set-associative backend must degrade
        to ``simulate_lru`` exactly."""
        assert simulate_set_associative(lines, 1, ways) == simulate_lru(lines, ways)


class TestVectorizedLineTraces:
    """``stack_distances`` on traces produced by the vectorized fast path."""

    @given(
        st.integers(1, 4),  # I extent
        st.integers(1, 4),  # J extent
        st.integers(1, 2),  # memlet coefficient on i
        st.integers(8, 96),  # line size
    )
    @settings(max_examples=40, deadline=None)
    def test_fenwick_matches_bruteforce_on_vectorized_traces(
        self, ni, nj, coeff, line_size
    ):
        from repro.sdfg import dtypes
        from repro.sdfg.memlet import Memlet
        from repro.sdfg.sdfg import SDFG
        from repro.simulation import MemoryModel, fast_line_trace, simulate_state

        sdfg = SDFG("vectrace")
        sdfg.add_array("A", [32, 32], dtypes.float64)
        sdfg.add_array("B", [32, 32], dtypes.float64)
        state = sdfg.add_state("main")
        state.add_mapped_tasklet(
            "compute",
            {"i": f"0:{ni}", "j": f"0:{nj}"},
            inputs={"a": Memlet("A", f"{coeff}*i, j"), "b": Memlet("A", "j, i")},
            code="out = a + b",
            outputs={"out": Memlet("B", "i, j")},
        )
        result = simulate_state(sdfg, {}, fast=True)
        assert result.vector_blocks
        lines = fast_line_trace(result, MemoryModel(sdfg, {}, line_size=line_size))
        assert stack_distances(lines) == stack_distances_bruteforce(lines)
