"""Tests for stack distances and the cache model (incl. key equivalences)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import (
    CacheModel,
    MissKind,
    classify_accesses,
    count_misses,
    simulate_lru,
    stack_distances,
    stack_distances_bruteforce,
)
from repro.simulation.cache import simulate_set_associative

INF = math.inf


class TestStackDistances:
    def test_all_cold(self):
        assert stack_distances([1, 2, 3]) == [INF, INF, INF]

    def test_immediate_reuse(self):
        assert stack_distances([1, 1]) == [INF, 0.0]

    def test_textbook_example(self):
        # Trace a b c b a: d(b@3)=1 (c), d(a@4)=2 (b, c distinct).
        dists = stack_distances([1, 2, 3, 2, 1])
        assert dists == [INF, INF, INF, 1.0, 2.0]

    def test_repeated_interleaving(self):
        dists = stack_distances([1, 2, 1, 2, 1])
        assert dists == [INF, INF, 1.0, 1.0, 1.0]

    def test_duplicates_between_counted_once(self):
        # a b b b a: only one distinct line between the two a's.
        dists = stack_distances([1, 2, 2, 2, 1])
        assert dists[-1] == 1.0

    def test_empty(self):
        assert stack_distances([]) == []


class TestBruteforceEquivalence:
    @given(st.lists(st.integers(0, 9), max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_fenwick_matches_bruteforce(self, lines):
        assert stack_distances(lines) == stack_distances_bruteforce(lines)

    @given(st.lists(st.integers(0, 3), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_small_alphabet(self, lines):
        assert stack_distances(lines) == stack_distances_bruteforce(lines)


class TestArrayKernel:
    """The NumPy stack-distance kernel vs. the pure-Python oracle."""

    @given(st.lists(st.integers(0, 9), max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_merge_tree_matches_olken(self, lines):
        from repro.simulation import stack_distances_array

        arr = stack_distances_array(np.asarray(lines, dtype=np.int64))
        assert arr.dtype == np.float64
        assert arr.tolist() == stack_distances(lines)

    @given(
        st.lists(st.integers(-5, 5), max_size=200),
        st.sampled_from([1, 2, 7, 64, 1024]),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunked_fenwick_route_matches(self, lines, chunk):
        from repro.simulation import stack_distances_array

        arr = stack_distances_array(np.asarray(lines, dtype=np.int64), chunk=chunk)
        assert arr.tolist() == stack_distances(lines)

    def test_empty_trace(self):
        from repro.simulation import stack_distances_array

        out = stack_distances_array(np.array([], dtype=np.int64))
        assert out.size == 0 and out.dtype == np.float64

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=256))
    @settings(max_examples=100, deadline=None)
    def test_merge_tree_equals_fenwick_on_valid_positions(self, lines):
        """The two private counting engines agree wherever the count is
        used (cold positions gather don't-care values in the merge tree)."""
        from repro.simulation.stackdist import (
            _prefix_dominance_counts,
            _prefix_dominance_counts_fenwick,
            _previous_occurrences,
        )

        ids = np.unique(np.asarray(lines, dtype=np.int64), return_inverse=True)[1]
        prev = _previous_occurrences(ids)
        valid = prev >= 0
        merge = _prefix_dominance_counts(prev)
        fenwick = _prefix_dominance_counts_fenwick(prev, 16)
        assert merge[valid].tolist() == fenwick[valid].tolist()


class TestFenwickRangeSum:
    def test_lo_zero_is_prefix_sum(self):
        from repro.simulation.stackdist import _Fenwick

        tree = _Fenwick(8)
        for i, value in enumerate([3, 1, 4, 1, 5, 9, 2, 6]):
            tree.add(i, value)
        assert tree.range_sum(0, 7) == 31
        assert tree.range_sum(0, 0) == 3
        assert tree.range_sum(0, 2) == 8

    def test_empty_range_is_zero(self):
        from repro.simulation.stackdist import _Fenwick

        tree = _Fenwick(4)
        tree.add(2, 5)
        assert tree.range_sum(3, 2) == 0
        assert tree.range_sum(2, 1) == 0
        assert tree.range_sum(0, -1) == 0

    def test_interior_range(self):
        from repro.simulation.stackdist import _Fenwick

        tree = _Fenwick(6)
        for i in range(6):
            tree.add(i, i + 1)
        assert tree.range_sum(2, 4) == 3 + 4 + 5


class TestElementStackDistances:
    def make_trace(self):
        from repro.sdfg.sdfg import SDFG
        from repro.sdfg import dtypes
        from repro.sdfg.memlet import Memlet
        from repro.simulation import MemoryModel, simulate_state

        sdfg = SDFG("esd")
        sdfg.add_array("A", [4, 4], dtypes.float64)
        sdfg.add_array("B", [4, 4], dtypes.float64)
        state = sdfg.add_state("main")
        state.add_mapped_tasklet(
            "compute",
            {"i": "0:4", "j": "0:4"},
            inputs={"a": Memlet("A", "i, j"), "b": Memlet("A", "j, i")},
            code="out = a + b",
            outputs={"out": Memlet("B", "i, j")},
        )
        result = simulate_state(sdfg, {}, fast=True)
        return result, MemoryModel(sdfg, {}, line_size=32)

    def test_precomputed_distances_reused(self):
        from repro.simulation import element_stack_distances, stack_distances
        from repro.simulation.stackdist import line_trace

        result, memory = self.make_trace()
        distances = stack_distances(line_trace(result.events, memory))
        fresh = element_stack_distances(result.events, memory)
        reused = element_stack_distances(result.events, memory, distances=distances)
        assert reused == fresh
        # Sentinel distances prove the precomputed values are actually used.
        sentinel = [float(i) for i in range(len(result.events))]
        tagged = element_stack_distances(result.events, memory, distances=sentinel)
        assert sorted(v for vs in tagged.values() for v in vs) == sentinel

    def test_data_filter_with_precomputed(self):
        from repro.simulation import element_stack_distances, stack_distances
        from repro.simulation.stackdist import line_trace

        result, memory = self.make_trace()
        distances = stack_distances(line_trace(result.events, memory))
        only_a = element_stack_distances(
            result.events, memory, data="A", distances=distances
        )
        assert only_a
        assert all(name == "A" for name, _ in only_a)
        full = element_stack_distances(result.events, memory, distances=distances)
        assert only_a == {k: v for k, v in full.items() if k[0] == "A"}


class TestCacheModel:
    def test_classification(self):
        model = CacheModel(line_size=64, capacity_lines=4)
        assert model.classify(INF) is MissKind.COLD
        assert model.classify(3.0) is MissKind.HIT
        assert model.classify(4.0) is MissKind.CAPACITY
        assert model.classify(100.0) is MissKind.CAPACITY

    def test_count_misses(self):
        model = CacheModel(capacity_lines=2)
        counts = count_misses([INF, INF, 0.0, 2.0, 1.0], model)
        assert (counts.hits, counts.cold, counts.capacity) == (2, 2, 1)
        assert counts.misses == 3
        assert counts.miss_rate == pytest.approx(0.6)

    def test_capacity_bytes(self):
        assert CacheModel(64, 512).capacity_bytes == 32768

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            CacheModel(line_size=0)
        with pytest.raises(SimulationError):
            CacheModel(capacity_lines=0)

    def test_classify_accesses(self):
        model = CacheModel(capacity_lines=8)
        kinds = classify_accesses([INF, 1.0], model)
        assert kinds == [MissKind.COLD, MissKind.HIT]


class TestLRUSimulator:
    def test_basic(self):
        misses = simulate_lru([1, 2, 1, 3, 2], capacity_lines=2)
        assert misses == [True, True, False, True, True]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            simulate_lru([1], 0)

    @given(
        st.lists(st.integers(0, 9), max_size=200),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_threshold_model_equals_exact_lru(self, lines, capacity):
        """The paper's justification: distance >= C  <=>  LRU miss.

        This is the McKinley/Temam & Beyls/D'Hollander argument for
        estimating misses from stack distances under full associativity.
        """
        model = CacheModel(capacity_lines=capacity)
        predicted = [model.classify(d).is_miss for d in stack_distances(lines)]
        assert predicted == simulate_lru(lines, capacity)

    def test_conflict_misses_on_same_set_pattern(self):
        """Lines mapping to one set conflict even in an underfull cache."""
        # Lines 0 and 4 both map to set 0 of a 4-set direct-mapped cache.
        lines = [0, 4, 0, 4]
        sa = simulate_set_associative(lines, num_sets=4, ways=1)
        fa = simulate_lru(lines, capacity_lines=4)
        assert sum(sa) == 4  # every access conflicts
        assert sum(fa) == 2  # fully associative: both fit
        assert sum(sa) > sum(fa)

    def test_fully_associative_is_one_set(self):
        lines = [1, 5, 1, 9, 5, 1]
        assert simulate_set_associative(lines, 1, 3) == simulate_lru(lines, 3)

    @given(
        st.lists(st.integers(0, 15), max_size=150),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=150, deadline=None)
    def test_one_set_equals_lru(self, lines, ways):
        """A single set holding *ways* lines IS a fully-associative LRU
        cache of that capacity — the set-associative backend must degrade
        to ``simulate_lru`` exactly."""
        assert simulate_set_associative(lines, 1, ways) == simulate_lru(lines, ways)


class TestVectorizedLineTraces:
    """``stack_distances`` on traces produced by the vectorized fast path."""

    @given(
        st.integers(1, 4),  # I extent
        st.integers(1, 4),  # J extent
        st.integers(1, 2),  # memlet coefficient on i
        st.integers(8, 96),  # line size
    )
    @settings(max_examples=40, deadline=None)
    def test_fenwick_matches_bruteforce_on_vectorized_traces(
        self, ni, nj, coeff, line_size
    ):
        from repro.sdfg import dtypes
        from repro.sdfg.memlet import Memlet
        from repro.sdfg.sdfg import SDFG
        from repro.simulation import MemoryModel, fast_line_trace, simulate_state

        sdfg = SDFG("vectrace")
        sdfg.add_array("A", [32, 32], dtypes.float64)
        sdfg.add_array("B", [32, 32], dtypes.float64)
        state = sdfg.add_state("main")
        state.add_mapped_tasklet(
            "compute",
            {"i": f"0:{ni}", "j": f"0:{nj}"},
            inputs={"a": Memlet("A", f"{coeff}*i, j"), "b": Memlet("A", "j, i")},
            code="out = a + b",
            outputs={"out": Memlet("B", "i, j")},
        )
        result = simulate_state(sdfg, {}, fast=True)
        assert result.vector_blocks
        lines = fast_line_trace(result, MemoryModel(sdfg, {}, line_size=line_size))
        assert stack_distances(lines) == stack_distances_bruteforce(lines)
