"""Differential harness: compiled grid evaluation vs the tree interpreter.

The compiled engine (:mod:`repro.symbolic.compiled`) lowers hash-consed
expression DAGs to vectorized NumPy programs.  Its correctness claim is
*exact* agreement with the reference tree interpreter — ``Expr.evaluate``
and :func:`~repro.symbolic.expr.evaluate_int` — at every grid point,
including negative operands, zero-valued parameters, int64 overflow, and
the error contract for division by zero.  Every node type is covered by
a directed differential test, and a Hypothesis property checks random
trees against random environments.

Pinned division-by-zero contract: if *any* grid point makes a
``Div``/``FloorDiv``/``Mod`` denominator zero, the whole batched call
raises :class:`~repro.errors.EvaluationError` naming the offending
subexpression — no partial results.  This matches the interpreter's
per-point behaviour lifted grid-wide.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError, SymbolicError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.symbolic import (
    clear_compile_cache,
    compile_expr,
    div,
    evaluate_grid,
    evaluate_int,
    floor_div,
    intern,
    mod,
    pow_,
    smax,
    smin,
    sympify,
)

I = sympify("I")
J = sympify("J")
K = sympify("K")


def _random_envs(rng, names, n, lo=-10, hi=10, exclude=()):
    """Randomized environments spanning negatives, zero, and positives."""
    pool = [v for v in range(lo, hi + 1) if v not in exclude]
    return [{name: rng.choice(pool) for name in names} for _ in range(n)]


def _assert_matches(expr, envs):
    """Compiled evaluation must equal the tree interpreter at every point."""
    fn = compile_expr(expr)
    got = fn.eval_points(envs)
    assert len(got) == len(envs)
    for value, env in zip(got, envs):
        expected = expr.evaluate(env)
        if isinstance(expected, int):
            assert int(value) == expected, (env, value, expected)
            assert float(value) == float(expected)
        else:
            assert float(value) == float(expected), (env, value, expected)


class TestNodeDifferential:
    """One directed differential per node type, on randomized grids."""

    rng = random.Random(0xC0FFEE)

    def test_add_nested(self):
        _assert_matches(I + J + K + (-3), _random_envs(self.rng, "IJK", 64))

    def test_mul_nested(self):
        _assert_matches(I * J * K * 2, _random_envs(self.rng, "IJK", 64))

    def test_sub_and_neg(self):
        _assert_matches(I - J - 5, _random_envs(self.rng, "IJ", 64))
        _assert_matches(-I + J, _random_envs(self.rng, "IJ", 64))

    def test_pow_constant_exponent(self):
        _assert_matches(pow_(I, 3), _random_envs(self.rng, "I", 64))

    def test_pow_symbolic_exponent(self):
        # Positive exponents stay on the int64 fast path; the grid also
        # exercises negative bases.
        envs = [
            {"I": self.rng.choice([-3, -2, -1, 1, 2, 3]), "J": self.rng.randrange(0, 5)}
            for _ in range(64)
        ]
        _assert_matches(pow_(I, J), envs)

    def test_pow_negative_exponent_escalates_to_float(self):
        # int ** negative int is a float in Python; the compiled path
        # must escalate off the int64 fast path and agree exactly.
        envs = [{"I": 2, "J": -1}, {"I": -2, "J": -3}, {"I": 5, "J": 2}]
        _assert_matches(pow_(I, J), envs)

    def test_div_true_division(self):
        _assert_matches(div(I, J), _random_envs(self.rng, "IJ", 64, exclude=(0,)))

    def test_floor_div_negative_operands(self):
        # Python floor semantics: (-7) // 2 == -4, 7 // -2 == -4.
        _assert_matches(
            floor_div(I, J), _random_envs(self.rng, "IJ", 64, exclude=(0,))
        )
        _assert_matches(floor_div(I, J), [{"I": -7, "J": 2}, {"I": 7, "J": -2}])

    def test_mod_negative_operands(self):
        # Python sign-of-divisor semantics: (-7) % 2 == 1, 7 % -2 == -1.
        _assert_matches(mod(I, J), _random_envs(self.rng, "IJ", 64, exclude=(0,)))
        _assert_matches(mod(I, J), [{"I": -7, "J": 2}, {"I": 7, "J": -2}])

    def test_min_max(self):
        _assert_matches(smin(I, J, 3), _random_envs(self.rng, "IJ", 64))
        _assert_matches(smax(I, J, -3), _random_envs(self.rng, "IJ", 64))

    def test_nested_combination(self):
        expr = smax((I + 4) * (J + 4), floor_div(I * J, K)) + mod(I, K)
        _assert_matches(expr, _random_envs(self.rng, "IJK", 128, exclude=(0,)))

    def test_zero_valued_parameters(self):
        # Zeros are ordinary values everywhere except as divisors.
        expr = (I + J) * K + smin(I, 0)
        envs = [{"I": 0, "J": 0, "K": 0}, {"I": 0, "J": -2, "K": 5}]
        _assert_matches(expr, envs)

    def test_evaluate_int_agreement(self):
        expr = (I + 4) * (J + 4) - floor_div(K, 2)
        envs = _random_envs(self.rng, "IJK", 32)
        fn = compile_expr(expr)
        got = fn.eval_points(envs)
        for value, env in zip(got, envs):
            assert int(value) == evaluate_int(expr, env)

    def test_evaluate_grid_helper(self):
        envs = _random_envs(self.rng, "IJ", 16)
        out = evaluate_grid(I * J + 1, envs)
        assert [int(v) for v in out] == [env["I"] * env["J"] + 1 for env in envs]

    def test_constant_expression_broadcasts(self):
        out = compile_expr(sympify(7)).eval_points([{}, {}, {}])
        assert list(out) == [7, 7, 7]

    def test_empty_grid(self):
        out = compile_expr(I + J).eval_points([])
        assert len(out) == 0


class TestIntegerSemantics:
    def test_int64_overflow_falls_back_to_exact_objects(self):
        expr = I * I * I
        envs = [{"I": 2**40}, {"I": -(2**40)}, {"I": 3}]
        fn = compile_expr(expr)
        got = fn.eval_points(envs)
        assert got.dtype == object
        for value, env in zip(got, envs):
            assert value == env["I"] ** 3  # exact big ints, no wrap

    def test_huge_constants_compile_exactly(self):
        expr = I + 2**70
        got = compile_expr(expr).eval_points([{"I": 1}, {"I": -(2**70)}])
        assert list(got) == [2**70 + 1, 0]

    def test_small_grids_stay_int64(self):
        got = compile_expr(I * J).eval_points([{"I": 3, "J": -4}])
        assert got.dtype == np.int64
        assert got[0] == -12


class TestDivisionByZeroContract:
    """Pinned: any zero denominator fails the whole grid, by name."""

    @pytest.mark.parametrize(
        "build, op_name",
        [
            (lambda: div(I, J), "division"),
            (lambda: floor_div(I, J), "floor division"),
            (lambda: mod(I, J), "modulo"),
        ],
    )
    def test_zero_denominator_raises_grid_wide(self, build, op_name):
        expr = build()
        fn = compile_expr(expr)
        envs = [{"I": 6, "J": 2}, {"I": 1, "J": 0}]
        with pytest.raises(EvaluationError, match=f"{op_name} by zero"):
            fn.eval_points(envs)
        # The interpreter agrees point-wise on the offending env.
        with pytest.raises(EvaluationError, match="by zero"):
            expr.evaluate({"I": 1, "J": 0})

    def test_error_names_the_subexpression(self):
        expr = div(I, J + (-1))
        with pytest.raises(EvaluationError, match=r"I / \(-1 \+ J\)"):
            compile_expr(expr).eval_points([{"I": 1, "J": 1}])

    def test_missing_symbol_matches_interpreter_message(self):
        fn = compile_expr(I + J)
        with pytest.raises(EvaluationError, match="no value provided for symbol"):
            fn.eval_points([{"I": 1}])


# -- Hypothesis property: random trees, random grids -------------------------

SYMS = ("I", "J", "K")


@st.composite
def trees(draw, depth=3):
    """Random expression trees built through the smart constructors."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return sympify(draw(st.integers(min_value=-8, max_value=8)))
        return sympify(draw(st.sampled_from(SYMS)))
    op = draw(
        st.sampled_from(
            ["add", "sub", "mul", "div", "floordiv", "mod", "min", "max", "pow"]
        )
    )
    a = draw(trees(depth=depth - 1))
    b = draw(trees(depth=depth - 1))
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op in ("div", "floordiv", "mod"):
        build = {"div": div, "floordiv": floor_div, "mod": mod}[op]
        try:
            return build(a, b)
        except SymbolicError:
            # The constructors reject a literal-zero denominator at
            # build time; fall back to a sum for this draw.
            return a + b
    if op == "min":
        return smin(a, b)
    if op == "max":
        return smax(a, b)
    return pow_(a, draw(st.integers(min_value=0, max_value=3)))


@st.composite
def grids(draw):
    """1–4 environments; values span negatives, zero, and positives."""
    n = draw(st.integers(min_value=1, max_value=4))
    value = st.integers(min_value=-6, max_value=6)
    return [{name: draw(value) for name in SYMS} for _ in range(n)]


class TestDifferentialProperty:
    @given(trees(), grids())
    @settings(max_examples=300, deadline=None)
    def test_compiled_equals_interpreter(self, expr, envs):
        expected = []
        for env in envs:
            try:
                expected.append(expr.evaluate(env))
            except EvaluationError:
                expected.append(EvaluationError)
        fn = compile_expr(expr)
        if EvaluationError in expected:
            # Some point divides by zero: the batched call must refuse
            # the whole grid with the interpreter's error type.
            with pytest.raises(EvaluationError):
                fn.eval_points(envs)
            return
        got = fn.eval_points(envs)
        for value, env, want in zip(got, envs, expected):
            if isinstance(want, int):
                assert int(value) == want, (expr, env)
                assert float(value) == float(want)
            else:
                assert float(value) == float(want), (expr, env)

    @given(trees())
    @settings(max_examples=200, deadline=None)
    def test_intern_preserves_structure(self, expr):
        canonical = intern(expr)
        assert canonical == expr
        assert str(canonical) == str(expr)
        assert intern(canonical) is canonical


# -- observability ------------------------------------------------------------


class TestCompileObservability:
    def test_cache_hits_and_misses_counted(self):
        clear_compile_cache()
        metrics = MetricsRegistry()
        expr_a = (I + 4) * (J + 4)
        expr_b = (I + 4) * (J + 4)  # structural twin, distinct object
        assert expr_a is not expr_b
        compile_expr(expr_a, metrics=metrics)
        compile_expr(expr_b, metrics=metrics)
        assert metrics.counter("expr.compile.misses").value == 1
        assert metrics.counter("expr.compile.hits").value == 1

    def test_compile_span_recorded(self):
        clear_compile_cache()
        tracer = Tracer()
        compile_expr(I * J + K, tracer=tracer)
        [span] = tracer.spans("symbolic:compile")
        assert "expr" in span.attributes

    def test_session_counts_compiles(self, tmp_path):
        from repro.apps import hdiff
        from repro.tool.session import Session

        session = Session(hdiff.build_sdfg())
        clear_compile_cache()
        env = {"I": 16, "J": 16, "K": 4}
        view = session.global_view()
        view.movement_heatmap(env=env)
        misses = session.metrics.counter("expr.compile.misses").value
        assert misses > 0
        # A slider move over the same product only re-evaluates: every
        # expression is already compiled.
        view.movement_heatmap(env={"I": 32, "J": 32, "K": 4})
        assert session.metrics.counter("expr.compile.misses").value == misses
        assert session.metrics.counter("expr.compile.hits").value >= misses
