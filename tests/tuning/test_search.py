"""Tests for the auto-tuning beam search over transform sequences."""

import pytest

from repro.analysis.executor import CancelToken
from repro.apps import cloudsc, hdiff
from repro.errors import TuningError
from repro.tuning import MovementObjective, TuningSearch

#: hdiff's manually tuned variant (paper Fig. 8: permute + reorder) moves
#: this many bytes at the Fig. 7 cache model — the bar the search must meet.
HDIFF_MANUAL_BYTES = 177920

#: Restricting the search to the transforms of the paper's manual story
#: keeps the rediscovery test fast while leaving the *choice* of arrays,
#: orders and sequence entirely to the search.
HDIFF_TRANSFORMS = [
    "permute_array_layout",
    "reorder_map",
    "pad_strides_to_multiple",
]


def cloudsc_search(**overrides):
    settings = dict(
        beam=4, depth=2, budget=60,
        line_size=cloudsc.CACHE["line_size"],
        capacity_lines=cloudsc.CACHE["capacity_lines"],
    )
    settings.update(overrides)
    return TuningSearch(
        cloudsc.build_sdfg(), cloudsc.LOCAL_VIEW_SIZES, **settings
    )


class TestValidation:
    def test_bad_beam(self):
        with pytest.raises(TuningError):
            cloudsc_search(beam=0)

    def test_bad_depth(self):
        with pytest.raises(TuningError):
            cloudsc_search(depth=0)

    def test_bad_budget(self):
        with pytest.raises(TuningError):
            cloudsc_search(budget=0)

    def test_unknown_transform(self):
        with pytest.raises(TuningError):
            cloudsc_search(transforms=["nope"])


class TestCloudscSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return cloudsc_search().run()

    def test_finds_major_reduction(self, result):
        # Acceptance bar is >= 20%; the NBLOCKS stride/interchange story
        # is far past it.
        assert result.improvement >= 0.20
        assert result.best.score.moved_bytes < (
            result.baseline.score.moved_bytes
        )

    def test_best_is_known_optimum(self, result):
        kinds = {m.transform for m in result.best.sequence}
        assert kinds <= {"move_loop_into_map", "change_strides"}
        assert result.best.score.moved_bytes <= 4096

    def test_budget_respected(self, result):
        assert result.evaluated <= 60

    def test_dedup_happened(self, result):
        # Commuting layout transforms produce identical variants.
        assert result.deduplicated > 0

    def test_pass_cache_shared_across_candidates(self, result):
        # The core economics of the search: candidate re-scoring hits
        # the content-addressed pass cache.
        assert result.pass_hits > 0

    def test_trajectory_and_dict_shape(self, result):
        assert result.trajectory[0]["sequence"] == []
        assert all("moved_bytes" in e for e in result.trajectory)
        payload = result.to_dict()
        assert payload["stopped"] in (
            "converged", "depth", "budget", "timeout", "cancelled"
        )
        assert payload["best"]["moved_bytes"] == (
            result.best.score.moved_bytes
        )


class TestHdiffRediscovery:
    @pytest.fixture(scope="class")
    def result(self):
        search = TuningSearch(
            hdiff.build_sdfg(),
            hdiff.LOCAL_VIEW_SIZES,
            transforms=HDIFF_TRANSFORMS,
            beam=3,
            depth=4,
            budget=200,
            line_size=hdiff.FIG7_CACHE["line_size"],
            capacity_lines=hdiff.FIG7_CACHE["capacity_lines"],
        )
        return search.run()

    def test_beats_manual_sequence(self, result):
        """The search rediscovers (and here outdoes) the paper's manual
        permute+reorder variant."""
        assert result.best.score.moved_bytes <= HDIFF_MANUAL_BYTES

    def test_sequence_contains_manual_ingredients(self, result):
        kinds = {m.transform for m in result.best.sequence}
        assert "permute_array_layout" in kinds
        assert "reorder_map" in kinds

    def test_pass_hits_nonzero(self, result):
        assert result.pass_hits > 0


class TestControls:
    def test_events_emitted(self):
        events = []
        cloudsc_search(budget=20).run(on_event=events.append)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert "candidate" in kinds and "round" in kinds
        assert events[-1]["evaluated"] <= 20

    def test_budget_stops_search(self):
        result = cloudsc_search(budget=5, depth=6).run()
        assert result.evaluated <= 5
        assert result.stopped in ("budget", "depth")

    def test_cancel_before_run(self):
        token = CancelToken()
        token.cancel("test")
        result = cloudsc_search().run(cancel=token)
        assert result.stopped == "cancelled"
        assert result.evaluated == 1  # baseline only

    def test_timeout_zero(self):
        result = cloudsc_search(timeout=0.0).run()
        assert result.stopped == "timeout"

    def test_baseline_never_mutated(self):
        from repro.sdfg.serialize import sdfg_fingerprint

        sdfg = cloudsc.build_sdfg()
        before = sdfg_fingerprint(sdfg)
        TuningSearch(
            sdfg, cloudsc.LOCAL_VIEW_SIZES, beam=2, depth=1, budget=20,
            capacity_lines=cloudsc.CACHE["capacity_lines"],
        ).run()
        assert sdfg_fingerprint(sdfg) == before

    def test_workers_pool_path(self):
        # The picklable pool path must agree with the serial path.
        serial = cloudsc_search(budget=20).run()
        pooled = cloudsc_search(budget=20, workers=2).run()
        assert (
            pooled.best.score.moved_bytes == serial.best.score.moved_bytes
        )


class TestObjective:
    def test_score_components(self):
        from repro.passes import build_pipeline

        sdfg = cloudsc.build_sdfg()
        objective = MovementObjective(
            build_pipeline(), cloudsc.LOCAL_VIEW_SIZES,
            capacity_lines=cloudsc.CACHE["capacity_lines"],
        )
        score = objective.score(sdfg)
        assert score.moved_bytes == 28672
        assert score.ops > 0
        assert 0 < score.intensity < float("inf")
        assert score.to_dict()["moved_bytes"] == 28672

    def test_session_tune_shares_pipeline(self):
        from repro.tool import Session

        session = Session(cloudsc.build_sdfg())
        result = session.tune(
            cloudsc.LOCAL_VIEW_SIZES, beam=2, depth=1, budget=20,
            capacity_lines=cloudsc.CACHE["capacity_lines"],
        )
        assert result.evaluated > 1
        counters = session.metrics.to_dict()["counters"]
        assert counters.get("tuning.rounds", 0) >= 1
