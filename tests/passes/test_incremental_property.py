"""Property test: incremental analysis exactly equals from-scratch analysis.

For every example application, after an arbitrary interleaving of symbol
rebinds and graph transformations, the incremental session — which mixes
cached and recomputed pass products — must produce exactly the results a
cold pipeline computes over the same (serialized round-tripped) graph.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import bert, conv, hdiff, linalg
from repro.sdfg.serialize import dumps, loads
from repro.tool.session import Session
from repro.transforms import (
    fuse_all_maps,
    pad_strides_to_multiple,
    permute_array_layout,
    reorder_map,
)

#: app name -> (builder, candidate symbol environments)
APPS = {
    "hdiff": (
        hdiff.build_sdfg,
        [
            {"I": 4, "J": 4, "K": 3},
            {"I": 5, "J": 4, "K": 3},
            {"I": 4, "J": 5, "K": 4},
        ],
    ),
    "conv": (
        conv.build_conv,
        [
            {"Cout": 2, "Cin": 2, "H": 7, "W": 7, "KY": 3, "KX": 3},
            {"Cout": 3, "Cin": 2, "H": 7, "W": 7, "KY": 3, "KX": 3},
            {"Cout": 2, "Cin": 2, "H": 8, "W": 7, "KY": 3, "KX": 3},
        ],
    ),
    "linalg": (
        linalg.build_matmul,
        [
            {"I": 4, "J": 4, "K": 4},
            {"I": 6, "J": 4, "K": 4},
            {"I": 4, "J": 4, "K": 6},
        ],
    ),
    "bert": (
        bert.build_sdfg,
        [
            {"B": 1, "H": 2, "SM": 4, "EMB": 8, "FF": 8, "P": 4},
            {"B": 1, "H": 2, "SM": 6, "EMB": 8, "FF": 8, "P": 4},
        ],
    ),
}

OPS = ("pad", "permute", "reorder", "fuse", "query")


def _multidim_arrays(sdfg):
    return sorted(
        name for name, desc in sdfg.arrays.items() if len(desc.shape) >= 2
    )


def _apply_op(session, sdfg, op, env):
    """Apply one random mutation/query; skip gracefully when inapplicable."""
    kind, choice = op
    if kind == "pad":
        names = _multidim_arrays(sdfg)
        if names:
            session.apply(
                pad_strides_to_multiple, sdfg, names[choice % len(names)], 8
            )
    elif kind == "permute":
        names = _multidim_arrays(sdfg)
        if names:
            name = names[choice % len(names)]
            ndim = len(sdfg.arrays[name].shape)
            session.apply(
                permute_array_layout, sdfg, name, list(reversed(range(ndim)))
            )
    elif kind == "reorder":
        entries = [
            e
            for e in sdfg.start_state.map_entries()
            if len(e.map.params) >= 2
        ]
        if entries:
            entry = entries[choice % len(entries)]
            order = list(reversed(range(len(entry.map.params))))
            session.apply(reorder_map, entry, order)
    elif kind == "fuse":
        session.apply(fuse_all_maps, sdfg)
    elif kind == "query":
        # Interleaved queries (possibly at a rebound environment) populate
        # the caches the later operations must not be allowed to corrupt.
        session.local_view(env, line_size=16, capacity_lines=8).miss_counts()
        session.global_view().total_movement(env)


def _snapshot(session, env):
    lv = session.local_view(env, line_size=16, capacity_lines=8)
    misses = {
        k: (v.hits, v.cold, v.capacity) for k, v in lv.miss_counts().items()
    }
    gv = session.global_view()
    return {
        "misses": misses,
        "moved": lv.physical_movement(),
        "total_movement": gv.total_movement(env),
        "total_ops": gv.total_ops(env),
        "heat": sorted(gv.movement_heatmap(env).values.values()),
    }


@pytest.mark.parametrize("app", sorted(APPS))
@settings(max_examples=6, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=3)),
        max_size=5,
    ),
    env_choice=st.integers(min_value=0, max_value=1),
)
def test_incremental_equals_from_scratch(app, ops, env_choice):
    builder, envs = APPS[app]
    sdfg = builder()
    session = Session(sdfg)
    session.local_view(envs[0], line_size=16, capacity_lines=8).miss_counts()

    for op in ops:
        _apply_op(session, sdfg, op, envs[(env_choice + 1) % len(envs)])

    env = envs[env_choice]
    incremental = _snapshot(session, env)

    cold = Session(loads(dumps(sdfg)))
    from_scratch = _snapshot(cold, env)

    assert incremental == from_scratch
