"""Tests for the pass-result store's default LRU backing.

The pipeline-facing behavior (memoization, invalidation) is covered in
``test_pipeline.py``; this file exercises the backing cache itself —
in particular the approximate byte accounting that bounds a store whose
entry count alone would underestimate its footprint.
"""

from repro.passes.store import ResultStore, _LRUBacking


class TestLRUBackingBytes:
    def test_byte_bound_is_a_second_eviction_trigger(self):
        backing = _LRUBacking(maxsize=100, max_bytes=350, sizeof=len)
        for n in range(5):
            backing.put((n,), "x" * 100)
        assert len(backing) <= 3  # 100-entry count bound never fired
        assert backing.approx_bytes <= 350
        assert (4,) in backing

    def test_count_bound_still_applies(self):
        backing = _LRUBacking(maxsize=2, max_bytes=10_000_000, sizeof=len)
        for n in range(5):
            backing.put((n,), "small")
        assert len(backing) == 2

    def test_bytes_tracked_through_overwrite_and_eviction(self):
        backing = _LRUBacking(maxsize=8, max_bytes=None, sizeof=len)
        backing.put(("a",), "x" * 30)
        backing.put(("b",), "x" * 70)
        assert backing.approx_bytes == 100
        backing.put(("a",), "x" * 5)  # overwrite: size replaced, not added
        assert backing.approx_bytes == 75
        backing.clear()
        assert backing.approx_bytes == 0

    def test_info_surfaces_byte_accounting(self):
        backing = _LRUBacking(maxsize=4, max_bytes=9000, sizeof=len)
        backing.put(("k",), "x" * 42)
        info = backing.info()
        assert info["approx_bytes"] == 42
        assert info["max_bytes"] == 9000

    def test_no_byte_bound_reports_zero(self):
        assert _LRUBacking(maxsize=4).info()["max_bytes"] == 0

    def test_default_sizeof_orders_by_magnitude(self):
        backing = _LRUBacking(maxsize=4)  # default approx_sizeof
        backing.put(("small",), [1])
        small = backing.approx_bytes
        backing.put(("large",), list(range(10_000)))
        assert backing.approx_bytes > small * 10

    def test_sizing_failure_falls_back_to_zero(self):
        def broken(value):
            raise TypeError("unsizable")

        backing = _LRUBacking(maxsize=4, max_bytes=10, sizeof=broken)
        backing.put(("k",), "a perfectly good value")
        assert backing.get(("k",)) == "a perfectly good value"


class TestResultStorePassthrough:
    def test_max_bytes_forwarded_to_default_backing(self):
        store = ResultStore(maxsize=64, max_bytes=77)
        assert store.info()["max_bytes"] == 77

    def test_byte_evicted_entry_is_a_miss(self):
        store = ResultStore(maxsize=64, max_bytes=120)
        store.put(("big",), "x" * 5000)
        store.put(("bigger",), "y" * 5000)
        assert ResultStore.is_miss(store.get(("big",)))
        assert store.get(("bigger",)) == "y" * 5000

    def test_single_oversized_entry_survives(self):
        # Evicting the only (oversized) entry would put the pipeline in
        # a put/miss recompute loop, so the newest entry is exempt.
        store = ResultStore(maxsize=64, max_bytes=16)
        store.put(("huge",), "z" * 100_000)
        assert store.get(("huge",)) == "z" * 100_000
