"""Acceptance tests for content-addressed incremental analysis.

On each example application (hdiff, conv, linalg, bert) the pass-run
counters must *prove* that after a single symbol rebind or one applied
transformation only the downstream-affected passes re-execute — and the
incremental results must exactly equal a cold-pipeline run over the same
graph content.
"""

import pytest

from repro.apps import bert, conv, hdiff, linalg
from repro.sdfg.serialize import dumps, loads
from repro.tool.session import Session
from repro.transforms import (
    MapFusion,
    pad_strides_to_multiple,
    permute_array_layout,
)

LOCAL_CHAIN = (
    "local.analytic",
    "local.classify",
    "local.physmove",
)

#: The enumeration chain the analytic engine short-circuits: with the
#: analytic product available, these passes never execute.
ENUMERATION_CHAIN = (
    "local.trace",
    "local.layout",
    "local.stackdist",
)

#: app name -> (builder, small sizes, the same sizes with one symbol rebound,
#:              a non-transient multi-dim array to pad)
APPS = {
    "hdiff": (
        hdiff.build_sdfg,
        {"I": 4, "J": 4, "K": 3},
        {"I": 5, "J": 4, "K": 3},
        "in_field",
    ),
    "conv": (
        conv.build_conv,
        {"Cout": 2, "Cin": 2, "H": 7, "W": 7, "KY": 3, "KX": 3},
        {"Cout": 3, "Cin": 2, "H": 7, "W": 7, "KY": 3, "KX": 3},
        None,
    ),
    "linalg": (
        linalg.build_matmul,
        {"I": 4, "J": 4, "K": 4},
        {"I": 4, "J": 6, "K": 4},
        "A",
    ),
    "bert": (
        bert.build_sdfg,
        {"B": 1, "H": 2, "SM": 4, "EMB": 8, "FF": 8, "P": 4},
        {"B": 1, "H": 2, "SM": 6, "EMB": 8, "FF": 8, "P": 4},
        None,
    ),
}


def app_case(name):
    builder, sizes, rebound, pad_array = APPS[name]
    sdfg = builder()
    if pad_array is None:
        pad_array = next(
            n
            for n, d in sdfg.arrays.items()
            if not d.transient and len(d.shape) >= 2
        )
    return sdfg, sizes, rebound, pad_array


def chain_runs(session):
    return {
        p: session.pipeline.runs(p) for p in LOCAL_CHAIN + ENUMERATION_CHAIN
    }


def query_local(session, sizes):
    lv = session.local_view(sizes)
    return lv.miss_counts(), lv.physical_movement()


def miss_tuples(misses):
    return {k: (v.hits, v.cold, v.capacity) for k, v in misses.items()}


@pytest.mark.parametrize("app", sorted(APPS))
class TestIncrementalCounters:
    def test_repeat_query_runs_no_pass(self, app):
        sdfg, sizes, _, _ = app_case(app)
        session = Session(sdfg)
        query_local(session, sizes)
        before = chain_runs(session)
        query_local(session, sizes)
        assert chain_runs(session) == before

    def test_symbol_rebind_reruns_local_chain_only(self, app):
        sdfg, sizes, rebound, _ = app_case(app)
        session = Session(sdfg)
        gv = session.global_view()
        gv.movement_heatmap(sizes)
        query_local(session, sizes)
        before = chain_runs(session)
        assert session.pipeline.runs("global.movement") == 1

        gv.movement_heatmap(rebound)
        query_local(session, rebound)

        after = chain_runs(session)
        for product in LOCAL_CHAIN:
            assert after[product] == before[product] + 1, product
        # The analytic engine served classification, so the enumeration
        # chain never ran at all — at either size.
        for product in ENUMERATION_CHAIN:
            assert after[product] == 0, product
        # The symbolic movement expressions do not depend on the symbol
        # values: only the evaluation pass re-ran.
        assert session.pipeline.runs("global.movement") == 1
        assert session.pipeline.runs("global.movement.eval") == 2

    def test_capacity_change_reuses_trace_and_distances(self, app):
        sdfg, sizes, _, _ = app_case(app)
        session = Session(sdfg)
        query_local(session, sizes)
        before = chain_runs(session)

        lv = session.local_view(sizes, capacity_lines=8)
        lv.miss_counts()
        lv.physical_movement()

        after = chain_runs(session)
        # Capacity is not a key component of the analytic product (it
        # carries full histograms), nor of the enumeration chain.
        for product in ("local.analytic",) + ENUMERATION_CHAIN:
            assert after[product] == before[product], product
        for product in ("local.classify", "local.physmove"):
            assert after[product] == before[product] + 1, product

    def test_stride_padding_keeps_trace_cached(self, app):
        sdfg, sizes, _, pad_array = app_case(app)
        session = Session(sdfg)
        query_local(session, sizes)
        before = chain_runs(session)

        report = session.apply(pad_strides_to_multiple, sdfg, pad_array, 8)
        assert report.layout_only
        query_local(session, sizes)

        after = chain_runs(session)
        # The enumeration chain stays dormant: the analytic product is
        # keyed by physical descriptors (strides changed → it re-runs)
        # and keeps serving classification.
        for product in ENUMERATION_CHAIN:
            assert after[product] == 0, product
        for product in ("local.analytic", "local.classify"):
            assert after[product] == before[product] + 1, product

    def test_incremental_equals_cold_pipeline(self, app):
        sdfg, sizes, rebound, pad_array = app_case(app)
        session = Session(sdfg)
        # Warm the pipeline, rebind a symbol, apply a transform — the
        # incremental session mixes cached and recomputed products.
        query_local(session, sizes)
        session.apply(pad_strides_to_multiple, sdfg, pad_array, 8)
        misses, moved = query_local(session, rebound)
        heat = session.global_view().movement_heatmap(rebound)

        # The cold session analyzes the same content from scratch.
        cold = Session(loads(dumps(sdfg)))
        cold_misses, cold_moved = query_local(cold, rebound)
        cold_heat = cold.global_view().movement_heatmap(rebound)

        assert miss_tuples(misses) == miss_tuples(cold_misses)
        assert moved == cold_moved
        # Heatmaps are keyed by edge objects, which are not shared across
        # the serialization round trip — compare the value multisets.
        assert sorted(heat.values.values()) == sorted(cold_heat.values.values())


def build_fusable_chain():
    """A -> map -> B(transient) -> map -> C: one fusion opportunity."""
    from repro.sdfg import SDFG, Memlet, dtypes
    from repro.symbolic import symbols

    (N,) = symbols("N")
    sdfg = SDFG("chain")
    sdfg.add_array("A", [N], dtypes.float64)
    sdfg.add_transient("B", [N], dtypes.float64)
    sdfg.add_array("C", [N], dtypes.float64)
    state = sdfg.add_state("main")
    state.add_mapped_tasklet(
        "scale",
        {"i": "0:N"},
        inputs={"x": Memlet("A", "i")},
        code="_out = x * 2.0",
        outputs={"_out": Memlet("B", "i")},
    )
    b_node = next(n for n in state.data_nodes() if n.data == "B")
    state.add_mapped_tasklet(
        "offset",
        {"j": "0:N"},
        inputs={"x": Memlet("B", "j")},
        code="_out = x + 1.0",
        outputs={"_out": Memlet("C", "j")},
        input_nodes={"B": b_node},
    )
    sdfg.validate()
    return sdfg


class TestStaleAnalysisRegression:
    """The bug the content-addressed store eliminates: views serving
    results computed for a pre-transformation graph."""

    ENV = {"N": 16}

    def test_movement_heatmap_reflects_map_fusion(self):
        sdfg = build_fusable_chain()
        session = Session(sdfg)
        gv = session.global_view()
        before = gv.movement_heatmap(self.ENV)

        match = MapFusion.find_matches(sdfg, sdfg.start_state)[0]
        report = session.apply(match)
        assert report.transform == "MapFusion"

        # Same (long-lived) view object, no explicit invalidation: the
        # next query fingerprints the fused graph and recomputes.
        after = gv.movement_heatmap(self.ENV)
        assert after.values != before.values
        assert gv.total_movement(self.ENV) < (
            Session(build_fusable_chain()).global_view().total_movement(self.ENV)
        )

    def test_local_view_not_stale_after_layout_transform(self):
        sdfg = linalg.build_matmul()
        sizes = {"I": 8, "J": 8, "K": 8}
        session = Session(sdfg)
        before = session.local_view(
            sizes, line_size=16, capacity_lines=4
        ).physical_movement()

        # Transposing B's layout changes its traversal locality.
        session.apply(permute_array_layout, sdfg, "B", [1, 0])
        after = session.local_view(
            sizes, line_size=16, capacity_lines=4
        ).physical_movement()

        assert after != before
        cold = Session(loads(dumps(sdfg)))
        assert (
            cold.local_view(sizes, line_size=16, capacity_lines=4)
            .physical_movement() == after
        )

    def test_sweep_not_stale_after_transform(self):
        sdfg = linalg.build_matmul()
        grid = [{"I": 8, "J": 8, "K": 8}, {"I": 8, "J": 8, "K": 6}]
        session = Session(sdfg)
        before = session.sweep(grid, line_size=16, capacity_lines=4)

        session.apply(permute_array_layout, sdfg, "B", [1, 0])
        after = session.sweep(grid, line_size=16, capacity_lines=4)

        assert [p.moved_bytes for p in after] != [p.moved_bytes for p in before]

    def test_pass_report_names_the_transform(self):
        sdfg = build_fusable_chain()
        session = Session(sdfg)
        gv = session.global_view()
        gv.movement_heatmap(self.ENV)
        match = MapFusion.find_matches(sdfg, sdfg.start_state)[0]
        session.apply(match)
        gv.movement_heatmap(self.ENV)
        report = session.pass_report()
        assert "global.movement" in report
        assert "MapFusion" in report
