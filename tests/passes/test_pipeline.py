"""Unit tests for the pass scheduler, context, and result store."""

import pytest

from repro.apps import linalg
from repro.errors import PipelineError
from repro.obs import MetricsRegistry, Tracer
from repro.passes import Pass, PassContext, Pipeline, ResultStore, build_pipeline
from repro.transforms import pad_strides_to_multiple


def context(**kwargs):
    return PassContext(linalg.build_outer_product(), **kwargs)


class CountingPass(Pass):
    """Configurable dummy pass counting its own executions."""

    def __init__(self, name, depends_on=(), uses=(), value=None):
        self.name = name
        self.depends_on = tuple(depends_on)
        self.uses = tuple(uses)
        self.value = value if value is not None else name
        self.executions = 0

    def run(self, ctx, inputs):
        self.executions += 1
        return (self.value, dict(inputs))


class TestResultStore:
    def test_none_is_storable(self):
        store = ResultStore()
        store.put(("k",), None)
        assert store.get(("k",)) is None
        assert not ResultStore.is_miss(store.get(("k",)))
        assert ResultStore.is_miss(store.get(("absent",)))

    def test_lru_eviction(self):
        store = ResultStore(maxsize=2)
        store.put(("a",), 1)
        store.put(("b",), 2)
        assert store.get(("a",)) == 1  # refresh "a"
        store.put(("c",), 3)
        assert not store.contains(("b",))
        assert store.get(("a",)) == 1 and store.get(("c",)) == 3

    def test_contains_does_not_count(self):
        store = ResultStore()
        store.put(("x",), 0)
        store.contains(("x",))
        store.contains(("y",))
        info = store.info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_clear(self):
        store = ResultStore()
        store.put(("x",), 1)
        store.clear()
        assert len(store) == 0
        assert ResultStore.is_miss(store.get(("x",)))


class TestRegistry:
    def test_rejects_duplicate_product(self):
        pipeline = Pipeline([CountingPass("a")])
        with pytest.raises(PipelineError):
            pipeline.register(CountingPass("a"))

    def test_rejects_unnamed_pass(self):
        with pytest.raises(PipelineError):
            Pipeline([CountingPass("")])

    def test_unknown_product(self):
        pipeline = Pipeline([CountingPass("a")])
        with pytest.raises(PipelineError, match="unknown product"):
            pipeline.run("zzz", context())

    def test_contains(self):
        pipeline = Pipeline([CountingPass("a")])
        assert "a" in pipeline and "b" not in pipeline


class TestTopologicalOrder:
    def test_orders_dependencies_first(self):
        pipeline = Pipeline([
            CountingPass("c", depends_on=("b",)),
            CountingPass("a"),
            CountingPass("b", depends_on=("a",)),
        ])
        names = [p.name for p in pipeline.order()]
        assert names.index("a") < names.index("b") < names.index("c")

    def test_cycle_detected(self):
        pipeline = Pipeline([
            CountingPass("a", depends_on=("b",)),
            CountingPass("b", depends_on=("a",)),
        ])
        with pytest.raises(PipelineError, match="cycle"):
            pipeline.order()

    def test_unregistered_dependency(self):
        pipeline = Pipeline([CountingPass("a", depends_on=("ghost",))])
        with pytest.raises(PipelineError, match="unregistered"):
            pipeline.order()


class TestMemoization:
    def test_second_run_is_a_hit(self):
        p = CountingPass("a", uses=("env",))
        pipeline = Pipeline([p], metrics=MetricsRegistry())
        ctx = context(env={"M": 4, "N": 4})
        first = pipeline.run("a", ctx)
        second = pipeline.run("a", context(env={"M": 4, "N": 4}))
        assert second is first
        assert p.executions == 1
        assert pipeline.runs("a") == 1

    def test_component_change_recomputes(self):
        p = CountingPass("a", uses=("env",))
        pipeline = Pipeline([p])
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        pipeline.run("a", context(env={"M": 8, "N": 4}))
        assert p.executions == 2

    def test_dependency_values_are_passed(self):
        pipeline = Pipeline([
            CountingPass("a", value="A"),
            CountingPass("b", depends_on=("a",)),
        ])
        _, inputs = pipeline.run("b", context())
        assert inputs["a"] == ("A", {})

    def test_upstream_change_invalidates_downstream(self):
        up = CountingPass("a", uses=("env",))
        down = CountingPass("b", depends_on=("a",), uses=())
        pipeline = Pipeline([up, down])
        pipeline.run("b", context(env={"M": 4, "N": 4}))
        pipeline.run("b", context(env={"M": 5, "N": 4}))
        assert up.executions == 2
        assert down.executions == 2  # its key embeds the upstream key

    def test_graph_mutation_changes_key(self):
        p = CountingPass("a", uses=("arrays",))
        pipeline = Pipeline([p])
        sdfg = linalg.build_outer_product()
        key_before = pipeline.key("a", PassContext(sdfg))
        pad_strides_to_multiple(sdfg, "C", 8)
        key_after = pipeline.key("a", PassContext(sdfg))
        assert key_before != key_after

    def test_logical_component_ignores_layout(self):
        p = CountingPass("a", uses=("arrays.logical",))
        pipeline = Pipeline([p])
        sdfg = linalg.build_outer_product()
        key_before = pipeline.key("a", PassContext(sdfg))
        pad_strides_to_multiple(sdfg, "C", 8)
        assert pipeline.key("a", PassContext(sdfg)) == key_before

    def test_key_is_pure(self):
        """Keys are computable without ever running a pass."""
        p = CountingPass("a", uses=("env",))
        pipeline = Pipeline([p])
        key = pipeline.key("a", context(env={"M": 2, "N": 2}))
        assert p.executions == 0
        assert key[0] == "a"


class TestInvalidationRecords:
    def test_first_run_reason(self):
        pipeline = Pipeline([CountingPass("a", uses=("env",))])
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        record = pipeline.last_invalidation("a")
        assert record is not None and "first run" in record.reasons

    def test_env_change_reason(self):
        pipeline = Pipeline([CountingPass("a", uses=("env",))])
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        pipeline.run("a", context(env={"M": 8, "N": 4}))
        record = pipeline.last_invalidation("a")
        assert "symbol values changed" in record.describe()

    def test_upstream_reason(self):
        pipeline = Pipeline([
            CountingPass("a", uses=("env",)),
            CountingPass("b", depends_on=("a",)),
        ])
        pipeline.run("b", context(env={"M": 4, "N": 4}))
        pipeline.run("b", context(env={"M": 8, "N": 4}))
        record = pipeline.last_invalidation("b")
        assert "upstream pass 'a' recomputed" in record.describe()

    def test_transform_attribution(self):
        pipeline = Pipeline([CountingPass("a", uses=("arrays",))])
        sdfg = linalg.build_outer_product()
        pipeline.run("a", PassContext(sdfg))
        pad_strides_to_multiple(sdfg, "C", 8)
        pipeline.note_transform("pad_strides_to_multiple on C")
        pipeline.run("a", PassContext(sdfg))
        record = pipeline.last_invalidation("a")
        assert "data descriptors changed" in record.describe()
        assert "pad_strides_to_multiple on C" in record.describe()

    def test_eviction_reason(self):
        pipeline = Pipeline([CountingPass("a", uses=("env",))])
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        pipeline.store.clear()
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        record = pipeline.last_invalidation("a")
        assert "evicted" in record.describe()


class TestObservability:
    def test_spans_and_counters(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        pipeline = Pipeline(
            [CountingPass("a", uses=("env",))], tracer=tracer, metrics=metrics
        )
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        assert metrics.counter("pass.a.runs").value == 1
        assert metrics.counter("pass.a.hits").value == 1
        assert metrics.counter("pass.a.misses").value == 1

    def test_report_renders(self):
        pipeline = Pipeline(
            [CountingPass("a", uses=("env",))],
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        )
        pipeline.run("a", context(env={"M": 4, "N": 4}))
        pipeline.note_transform("some transform")
        report = pipeline.report()
        assert "a" in report and "runs" in report
        assert "some transform" in report

    def test_runs_requires_metrics(self):
        pipeline = Pipeline([CountingPass("a")])
        with pytest.raises(PipelineError):
            pipeline.runs("a")


class TestPassContext:
    def test_unknown_component(self):
        with pytest.raises(PipelineError, match="unknown context component"):
            context().component("bogus")

    def test_require_env(self):
        with pytest.raises(PipelineError, match="symbol environment"):
            context().require_env("some.pass")

    def test_state_component_falls_back_to_all_states(self):
        sdfg = linalg.build_outer_product()
        unfocused = PassContext(sdfg)
        focused = PassContext(sdfg, state=sdfg.start_state)
        assert unfocused.component("state") == unfocused.component("states")
        assert focused.component("state") != unfocused.component("states")

    def test_adopt_components_skips_env(self):
        sdfg = linalg.build_outer_product()
        a = PassContext(sdfg, env={"M": 2, "N": 2})
        a.component("states")
        a.component("env")
        b = PassContext(sdfg, env={"M": 9, "N": 9})
        b.adopt_components(a)
        assert "states" in b._components
        assert b.component("env") == (("M", 9), ("N", 9))


class TestDefaultPipeline:
    def test_registers_global_and_local_chains(self):
        pipeline = build_pipeline()
        for product in (
            "global.movement", "global.movement.eval", "global.opcount",
            "global.intensity", "global.totals", "local.trace",
            "local.layout", "local.stackdist", "local.classify",
            "local.physmove", "local.point",
        ):
            assert product in pipeline
        names = [p.name for p in pipeline.order()]
        assert names.index("local.trace") < names.index("local.classify")
