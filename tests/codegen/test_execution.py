"""Tests for the interpreter and the NumPy code generator."""

import numpy as np
import pytest

from repro.codegen import call_sdfg, compile_sdfg, generate_source, interpret_sdfg
from repro.errors import CodegenError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols

I, J, K = symbols("I J K")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@program
def matmul(A: float64[I, K], B: float64[K, J], C: float64[I, J]):
    for i, j, k in pmap(I, J, K):
        C[i, j] += A[i, k] * B[k, j]


@program
def stencil(A: float64[I + 2], B: float64[I]):
    for i in pmap(I):
        B[i] = (A[i] + A[i + 1] + A[i + 2]) / 3.0


@program
def with_local(A: float64[I], B: float64[I]):
    for i in pmap(I):
        t = A[i] * 2.0
        B[i] = t + 1.0


@program
def scaled(A: float64[I], alpha: float64, B: float64[I]):
    for i in pmap(I):
        B[i] = alpha * A[i]


@program
def uses_params(A: float64[I, J]):
    for i, j in pmap(I, J):
        A[i, j] = i + 2 * j  # parameters as values: loop fallback


def rng():
    return np.random.default_rng(42)


class TestInterpreter:
    def test_outer_product(self):
        a, b = rng().random(3), rng().random(4)
        c = np.zeros((3, 4))
        interpret_sdfg(outer_product.to_sdfg(), {"A": a, "B": b, "C": c},
                       {"I": 3, "J": 4})
        np.testing.assert_allclose(c, np.outer(a, b))

    def test_matmul(self):
        r = rng()
        a, b = r.random((3, 5)), r.random((5, 4))
        c = np.zeros((3, 4))
        interpret_sdfg(matmul.to_sdfg(), {"A": a, "B": b, "C": c},
                       {"I": 3, "J": 4, "K": 5})
        np.testing.assert_allclose(c, a @ b)

    def test_stencil(self):
        a = rng().random(8)
        b = np.zeros(6)
        interpret_sdfg(stencil.to_sdfg(), {"A": a, "B": b}, {"I": 6})
        expected = (a[:-2] + a[1:-1] + a[2:]) / 3.0
        np.testing.assert_allclose(b, expected)

    def test_locals(self):
        a = rng().random(5)
        b = np.zeros(5)
        interpret_sdfg(with_local.to_sdfg(), {"A": a, "B": b}, {"I": 5})
        np.testing.assert_allclose(b, a * 2.0 + 1.0)

    def test_scalar_parameter(self):
        a = rng().random(4)
        b = np.zeros(4)
        interpret_sdfg(scaled.to_sdfg(), {"A": a, "alpha": 2.5, "B": b}, {"I": 4})
        np.testing.assert_allclose(b, 2.5 * a)

    def test_missing_argument(self):
        with pytest.raises(CodegenError, match="missing"):
            interpret_sdfg(outer_product.to_sdfg(), {}, {"I": 2, "J": 2})


class TestCodegen:
    def test_source_is_valid_python(self):
        src = generate_source(outer_product.to_sdfg())
        compile(src, "<test>", "exec")
        assert "def run(" in src

    def test_outer_product_vectorized(self):
        sdfg = outer_product.to_sdfg()
        src = generate_source(sdfg)
        assert "(vectorized)" in src
        a, b = rng().random(3), rng().random(4)
        c = np.zeros((3, 4))
        call_sdfg(sdfg, a, b, c)
        np.testing.assert_allclose(c, np.outer(a, b))

    def test_matmul_reduction(self):
        sdfg = matmul.to_sdfg()
        r = rng()
        a, b = r.random((6, 5)), r.random((5, 4))
        c = np.zeros((6, 4))
        call_sdfg(sdfg, a, b, c)
        np.testing.assert_allclose(c, a @ b)

    def test_stencil_slices(self):
        sdfg = stencil.to_sdfg()
        a = rng().random(10)
        b = np.zeros(8)
        call_sdfg(sdfg, a, b)
        np.testing.assert_allclose(b, (a[:-2] + a[1:-1] + a[2:]) / 3.0)

    def test_locals_vectorized(self):
        sdfg = with_local.to_sdfg()
        a = rng().random(5)
        b = np.zeros(5)
        call_sdfg(sdfg, a, b)
        np.testing.assert_allclose(b, a * 2.0 + 1.0)

    def test_param_values_fall_back_to_loops(self):
        sdfg = uses_params.to_sdfg()
        src = generate_source(sdfg)
        assert "(loop nest)" in src
        a = np.zeros((3, 4))
        call_sdfg(sdfg, a)
        expected = np.add.outer(np.arange(3), 2 * np.arange(4)).astype(float)
        np.testing.assert_allclose(a, expected)

    def test_symbol_inference_from_shapes(self):
        sdfg = stencil.to_sdfg()  # A has shape I+2: needs the solver
        a = rng().random(12)
        b = np.zeros(10)
        call_sdfg(sdfg, a, b)  # I inferred as 10
        assert not np.allclose(b, 0)

    def test_keyword_arguments(self):
        sdfg = outer_product.to_sdfg()
        a, b = rng().random(2), rng().random(2)
        c = np.zeros((2, 2))
        call_sdfg(sdfg, A=a, B=b, C=c)
        np.testing.assert_allclose(c, np.outer(a, b))

    def test_inconsistent_shapes_rejected(self):
        sdfg = outer_product.to_sdfg()
        compiled = compile_sdfg(sdfg)
        a = rng().random(3)
        b = rng().random(4)
        c = np.zeros((5, 4))  # I mismatch: 3 vs 5
        with pytest.raises(CodegenError, match="inconsistent"):
            compiled(a, b, c)

    def test_unknown_kwarg(self):
        sdfg = outer_product.to_sdfg()
        with pytest.raises(CodegenError, match="unknown"):
            compile_sdfg(sdfg)(z=1)

    def test_program_call_api(self):
        a, b = rng().random(3), rng().random(4)
        c = np.zeros((3, 4))
        outer_product(a, b, c)
        np.testing.assert_allclose(c, np.outer(a, b))

    def test_scalar_parameter(self):
        sdfg = scaled.to_sdfg()
        a = rng().random(4)
        b = np.zeros(4)
        call_sdfg(sdfg, a, 3.0, b)
        np.testing.assert_allclose(b, 3.0 * a)


class TestEquivalence:
    @pytest.mark.parametrize("prog,shapes", [
        (outer_product, {"A": (3,), "B": (4,), "C": (3, 4)}),
        (matmul, {"A": (3, 5), "B": (5, 4), "C": (3, 4)}),
        (stencil, {"A": (8,), "B": (6,)}),
        (with_local, {"A": (5,), "B": (5,)}),
    ])
    def test_codegen_matches_interpreter(self, prog, shapes):
        r = rng()
        env = {"I": 3, "J": 4, "K": 5}
        if prog is stencil or prog is with_local:
            env = {"I": shapes["B"][0] if prog is stencil else 5}
        args_interp = {k: r.random(v) for k, v in shapes.items()}
        args_gen = {k: v.copy() for k, v in args_interp.items()}
        sdfg = prog.to_sdfg()
        interpret_sdfg(sdfg, args_interp, env)
        call_sdfg(sdfg, **args_gen)
        for name in shapes:
            np.testing.assert_allclose(args_gen[name], args_interp[name])

    def test_fused_sdfg_executes_identically(self):
        from tests.transforms.test_map_fusion import build_chain
        from repro.transforms import fuse_all_maps

        sdfg = build_chain()
        a = rng().random(16)
        c0, c1 = np.zeros(16), np.zeros(16)
        interpret_sdfg(sdfg, {"A": a, "C": c0}, {"I": 16})
        fuse_all_maps(sdfg)
        call_sdfg(sdfg, a, c1)
        np.testing.assert_allclose(c0, a * 2.0 + 1.0)
        np.testing.assert_allclose(c1, c0)
