"""Property tests: the vectorizing code generator against the interpreter.

Random affine programs are built through the builder API — chains of map
scopes with random stencil offsets, elementwise operations and optional
sum reductions — and executed through both backends.  Any divergence is a
codegen bug (the interpreter is the semantics oracle).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import compile_sdfg, interpret_sdfg
from repro.sdfg import SDFG, Memlet, dtypes
from repro.symbolic import Subset, symbols

I, J = symbols("I J")

_OPS = ["{a} + {b}", "{a} * {b}", "{a} - {b}", "({a} + {b}) * 0.5"]


@st.composite
def elementwise_chain(draw):
    """A chain of 1-3 elementwise/stencil maps over 1-D arrays."""
    num_stages = draw(st.integers(1, 3))
    halo_per_stage = [draw(st.integers(0, 2)) for _ in range(num_stages)]
    total_halo = sum(halo_per_stage)
    ops = [draw(st.sampled_from(_OPS)) for _ in range(num_stages)]
    return num_stages, halo_per_stage, total_halo, ops


def build_chain_sdfg(num_stages, halo_per_stage, ops):
    """in -> stage_0 -> t0 -> stage_1 -> ... -> out, shrinking by halos."""
    sdfg = SDFG("random_chain")
    total_halo = sum(halo_per_stage)
    sdfg.add_array("inp", [I + 2 * total_halo], dtypes.float64)
    sizes = []
    remaining = total_halo
    names = []
    for s in range(num_stages):
        remaining -= halo_per_stage[s]
        extent = I + 2 * remaining
        if s == num_stages - 1:
            name = "out"
            sdfg.add_array(name, [extent], dtypes.float64)
        else:
            name = f"t{s}"
            sdfg.add_transient(name, [extent], dtypes.float64)
        sizes.append(extent)
        names.append(name)

    state = sdfg.add_state("main")
    produced = {}
    source = "inp"
    for s in range(num_stages):
        halo = halo_per_stage[s]
        target = names[s]
        if halo == 0:
            code = ops[s].format(a="x0", b="x0")
            inputs = {"x0": Memlet(source, "i")}
        else:
            code = ops[s].format(a="x0", b="x1")
            inputs = {
                "x0": Memlet(source, "i"),
                "x1": Memlet(source, f"i + {2 * halo}"),
            }
        input_nodes = {}
        if source in produced:
            input_nodes[source] = produced[source]
        tasklet, entry, exit_ = state.add_mapped_tasklet(
            f"stage{s}",
            {"i": f"0:{sizes[s]}"},
            inputs={k: v for k, v in inputs.items()},
            code=f"_out = {code}",
            outputs={"_out": Memlet(target, "i")},
            input_nodes=input_nodes,
        )
        out_node = next(
            e.dst for e in state.out_edges(exit_)
        )
        produced[target] = out_node
        source = target
    sdfg.validate()
    return sdfg


class TestRandomChains:
    @given(elementwise_chain(), st.integers(3, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_codegen_matches_interpreter(self, spec, size, seed):
        num_stages, halo_per_stage, total_halo, ops = spec
        sdfg = build_chain_sdfg(num_stages, halo_per_stage, ops)

        rng = np.random.default_rng(seed)
        inp = rng.random(size + 2 * total_halo)
        out_interp = np.zeros(size)
        out_gen = np.zeros(size)

        interpret_sdfg(sdfg, {"inp": inp, "out": out_interp}, {"I": size})
        compile_sdfg(sdfg)(inp, out_gen, I=size)
        np.testing.assert_allclose(out_gen, out_interp, rtol=1e-12)

    @given(elementwise_chain(), st.integers(3, 8))
    @settings(max_examples=20, deadline=None)
    def test_serialization_preserves_execution(self, spec, size):
        """to_json/from_json round-trips produce identical results."""
        from repro.sdfg.serialize import from_json, to_json

        num_stages, halo_per_stage, total_halo, ops = spec
        sdfg = build_chain_sdfg(num_stages, halo_per_stage, ops)
        clone = from_json(to_json(sdfg))
        clone.validate()

        rng = np.random.default_rng(0)
        inp = rng.random(size + 2 * total_halo)
        out_a, out_b = np.zeros(size), np.zeros(size)
        interpret_sdfg(sdfg, {"inp": inp, "out": out_a}, {"I": size})
        interpret_sdfg(clone, {"inp": inp, "out": out_b}, {"I": size})
        np.testing.assert_allclose(out_b, out_a)

    @given(elementwise_chain(), st.integers(3, 8))
    @settings(max_examples=15, deadline=None)
    def test_fusion_preserves_execution(self, spec, size):
        """Fusing whatever is fusible never changes results."""
        from repro.transforms import fuse_all_maps

        num_stages, halo_per_stage, total_halo, ops = spec
        sdfg = build_chain_sdfg(num_stages, halo_per_stage, ops)

        rng = np.random.default_rng(1)
        inp = rng.random(size + 2 * total_halo)
        out_before, out_after = np.zeros(size), np.zeros(size)
        interpret_sdfg(sdfg, {"inp": inp, "out": out_before}, {"I": size})
        fuse_all_maps(sdfg)
        sdfg.validate()
        interpret_sdfg(sdfg, {"inp": inp, "out": out_after}, {"I": size})
        np.testing.assert_allclose(out_after, out_before)


class Test2DReductions:
    @given(
        st.integers(2, 6),
        st.integers(2, 6),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["sum", "product"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_row_reduction(self, rows, cols, seed, wcr):
        sdfg = SDFG("reduce")
        sdfg.add_array("A", [I, J], dtypes.float64)
        sdfg.add_array("r", [I], dtypes.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "reduce",
            {"i": "0:I", "j": "0:J"},
            inputs={"a": Memlet("A", "i, j")},
            code="_out = a",
            outputs={"_out": Memlet("r", Subset.from_string("i"), wcr=wcr)},
        )
        sdfg.validate()

        rng = np.random.default_rng(seed)
        a = rng.random((rows, cols)) + 0.5
        init = np.zeros(rows) if wcr == "sum" else np.ones(rows)
        r_interp, r_gen = init.copy(), init.copy()
        interpret_sdfg(sdfg, {"A": a, "r": r_interp}, {"I": rows, "J": cols})
        compile_sdfg(sdfg)(a, r_gen, I=rows, J=cols)
        expected = a.sum(axis=1) if wcr == "sum" else a.prod(axis=1)
        np.testing.assert_allclose(r_interp, expected)
        np.testing.assert_allclose(r_gen, r_interp, rtol=1e-12)
