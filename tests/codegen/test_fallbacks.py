"""Codegen fallback paths: cases the vectorizer must decline correctly."""

import numpy as np
import pytest

from repro.codegen import call_sdfg, generate_source, interpret_sdfg
from repro.frontend import pmap, program
from repro.sdfg import SDFG, Memlet, dtypes
from repro.sdfg.dtypes import float32, float64
from repro.symbolic import symbols

I, J = symbols("I J")


@program
def strided(A: float64[I], B: float64[I]):
    for i in pmap("0:I:2"):
        B[i] = A[i] * 2.0


@program
def coefficient(A: float64[2 * I], B: float64[I]):
    for i in pmap(I):
        B[i] = A[2 * i]


@program
def offset_range(A: float64[I], B: float64[I]):
    for i in pmap((1, I - 1)):
        B[i] = A[i] + 1.0


class TestStridedMaps:
    def test_strided_map_falls_back(self):
        src = generate_source(strided.to_sdfg())
        assert "(loop nest)" in src

    def test_strided_results(self):
        a = np.arange(8.0)
        b = np.zeros(8)
        call_sdfg(strided.to_sdfg(), a, b)
        expected = np.zeros(8)
        expected[::2] = a[::2] * 2.0
        np.testing.assert_allclose(b, expected)


class TestNonUnitCoefficients:
    def test_coefficient_access_falls_back(self):
        src = generate_source(coefficient.to_sdfg())
        assert "(loop nest)" in src

    def test_coefficient_results(self):
        a = np.arange(10.0)
        b = np.zeros(5)
        call_sdfg(coefficient.to_sdfg(), a, b, I=5)
        np.testing.assert_allclose(b, a[::2])


class TestOffsetRanges:
    def test_interior_range_vectorizes(self):
        src = generate_source(offset_range.to_sdfg())
        assert "(vectorized)" in src

    def test_interior_results(self):
        a = np.arange(6.0)
        b = np.zeros(6)
        call_sdfg(offset_range.to_sdfg(), a, b)
        expected = np.zeros(6)
        expected[1:5] = a[1:5] + 1.0
        np.testing.assert_allclose(b, expected)


class TestNestedMapsFallback:
    def build(self):
        sdfg = SDFG("nested_maps")
        sdfg.add_array("A", [I, J], dtypes.float64)
        sdfg.add_array("B", [I, J], dtypes.float64)
        state = sdfg.add_state()
        a, b = state.add_access("A"), state.add_access("B")
        oentry, oexit = state.add_map("outer", {"i": "0:I"})
        ientry, iexit = state.add_map("inner", {"j": "0:J"})
        t = state.add_tasklet("t", ["x"], ["y"], "y = x * 3.0")
        state.add_memlet_path(a, oentry, ientry, t, memlet=Memlet("A", "i, j"),
                              dst_conn="x")
        state.add_memlet_path(t, iexit, oexit, b, memlet=Memlet("B", "i, j"),
                              src_conn="y")
        sdfg.validate()
        return sdfg

    def test_nested_scope_falls_back(self):
        src = generate_source(self.build())
        assert "(loop nest)" in src

    def test_nested_scope_results(self):
        sdfg = self.build()
        rng = np.random.default_rng(9)
        a = rng.random((3, 4))
        b = np.zeros((3, 4))
        call_sdfg(sdfg, a, b)
        np.testing.assert_allclose(b, a * 3.0)

    def test_interpreter_agrees(self):
        sdfg = self.build()
        rng = np.random.default_rng(10)
        a = rng.random((2, 5))
        b1, b2 = np.zeros((2, 5)), np.zeros((2, 5))
        interpret_sdfg(sdfg, {"A": a, "B": b1}, {"I": 2, "J": 5})
        call_sdfg(sdfg, a, b2)
        np.testing.assert_allclose(b2, b1)


class TestDtypeHandling:
    def test_float32_transient_allocation(self):
        @program
        def f32chain(A: float32[I], C: float32[I]):
            for i in pmap(I):
                C[i] = A[i] * 2.0

        src = generate_source(f32chain.to_sdfg())
        a = np.arange(4, dtype=np.float32)
        c = np.zeros(4, dtype=np.float32)
        call_sdfg(f32chain.to_sdfg(), a, c)
        np.testing.assert_allclose(c, a * 2.0)

    def test_transient_array_dtype_in_source(self):
        sdfg = SDFG("talloc")
        sdfg.add_array("A", [I], dtypes.float32)
        sdfg.add_transient("T", [I], dtypes.float32)
        sdfg.add_array("B", [I], dtypes.float32)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "m1", {"i": "0:I"}, inputs={"x": Memlet("A", "i")},
            code="_out = x", outputs={"_out": Memlet("T", "i")},
        )
        t = next(n for n in state.data_nodes() if n.data == "T")
        state.add_mapped_tasklet(
            "m2", {"i": "0:I"}, inputs={"x": Memlet("T", "i")},
            code="_out = x", outputs={"_out": Memlet("B", "i")},
            input_nodes={"T": t},
        )
        src = generate_source(sdfg)
        assert "np.float32" in src
