"""Tests for the @program frontend."""

import pytest

import repro
from repro.errors import FrontendError
from repro.frontend import pmap, program
from repro.sdfg import AccessNode, MapEntry, Tasklet
from repro.sdfg.data import Scalar
from repro.sdfg.dtypes import float32, float64
from repro.symbolic import Integer, symbols

I, J, K = symbols("I J K")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@program
def matmul(A: float64[I, K], B: float64[K, J], C: float64[I, J]):
    for i, j, k in pmap(I, J, K):
        C[i, j] += A[i, k] * B[k, j]


@program
def stencil1d(A: float64[I + 2], B: float64[I]):
    for i in pmap(I):
        B[i] = (A[i] + A[i + 1] + A[i + 2]) / 3.0


@program
def with_local(A: float64[I], B: float64[I]):
    for i in pmap(I):
        t = A[i] * 2.0
        B[i] = t + 1.0


@program
def two_kernels(A: float64[I], B: float64[I], C: float64[I]):
    for i in pmap(I):
        B[i] = A[i] * 2.0
    for i in pmap(I):
        C[i] = B[i] + 1.0


@program
def scaled(A: float64[I], alpha: float64, B: float64[I]):
    for i in pmap(I):
        B[i] = alpha * A[i]


class TestBasicParsing:
    def test_outer_product_structure(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        assert len(state.map_entries()) == 1
        assert len(state.tasklets()) == 1
        assert set(sdfg.input_containers()) == {"A", "B"}
        assert sdfg.output_containers() == ["C"]

    def test_sdfg_parse_cached_but_copies_returned(self):
        shared = outer_product.to_sdfg(copy=False)
        assert outer_product.to_sdfg(copy=False) is shared
        fresh = outer_product.to_sdfg()
        assert fresh is not shared  # mutations cannot leak back

    def test_map_ranges(self):
        sdfg = outer_product.to_sdfg()
        entry = sdfg.start_state.map_entries()[0]
        assert entry.map.params == ["i", "j"]
        assert str(entry.map.ranges[0]) == "0:I"
        assert str(entry.map.ranges[1]) == "0:J"

    def test_inner_memlets_are_points(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        tasklet = state.tasklets()[0]
        for e in state.in_edges(tasklet):
            assert e.data.memlet.subset.is_point

    def test_outer_memlet_volumes(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        entry = state.map_entries()[0]
        vols = {
            e.data.memlet.data: e.data.memlet.volume()
            for e in state.in_edges(entry)
        }
        assert vols["A"] == I * J
        assert vols["B"] == I * J

    def test_tasklet_code_rewritten(self):
        sdfg = outer_product.to_sdfg()
        code = sdfg.start_state.tasklets()[0].code
        assert "_out =" in code
        assert "_in_A_0" in code and "_in_B_1" in code


class TestReductions:
    def test_matmul_wcr(self):
        sdfg = matmul.to_sdfg()
        state = sdfg.start_state
        write_edges = [
            e for _, m in state.all_memlets()
            for e in [None] if False
        ]
        wcr = [m.wcr for _, m in state.all_memlets() if m.data == "C"]
        assert all(w == "sum" for w in wcr)

    def test_matmul_read_volume(self):
        sdfg = matmul.to_sdfg()
        state = sdfg.start_state
        entry = state.map_entries()[0]
        vols = {
            e.data.memlet.data: e.data.memlet.volume()
            for e in state.in_edges(entry)
        }
        assert vols["A"] == I * J * K
        assert vols["B"] == I * J * K

    def test_product_wcr(self):
        @program
        def prod(A: float64[I], out: float64[1]):
            for i in pmap(I):
                out[0] *= A[i]

        sdfg = prod.to_sdfg()
        wcr = [m.wcr for _, m in sdfg.start_state.all_memlets() if m.data == "out"]
        assert all(w == "product" for w in wcr)


class TestStencils:
    def test_multiple_reads_one_connector_each(self):
        sdfg = stencil1d.to_sdfg()
        state = sdfg.start_state
        tasklet = state.tasklets()[0]
        in_conns = [e.data.dst_conn for e in state.in_edges(tasklet)]
        assert len(in_conns) == 3  # A[i], A[i+1], A[i+2]

    def test_stencil_union_subset(self):
        sdfg = stencil1d.to_sdfg()
        state = sdfg.start_state
        entry = state.map_entries()[0]
        (edge,) = state.in_edges(entry)
        assert str(edge.data.memlet.subset) == f"0:{I + 2}"
        assert edge.data.memlet.volume() == 3 * I

    def test_duplicate_access_shares_connector(self):
        @program
        def square(A: float64[I], B: float64[I]):
            for i in pmap(I):
                B[i] = A[i] * A[i]

        sdfg = square.to_sdfg()
        tasklet = sdfg.start_state.tasklets()[0]
        assert len(tasklet.in_connectors) == 1


class TestLocals:
    def test_local_becomes_scalar_transient(self):
        sdfg = with_local.to_sdfg()
        transients = [
            n for n, d in sdfg.arrays.items() if d.transient and isinstance(d, Scalar)
        ]
        assert len(transients) == 1

    def test_local_inside_scope(self):
        sdfg = with_local.to_sdfg()
        state = sdfg.start_state
        sdict = state.scope_dict()
        entry = state.map_entries()[0]
        local_nodes = [
            n for n in state.data_nodes() if sdfg.arrays[n.data].transient
        ]
        assert len(local_nodes) == 1
        assert sdict[local_nodes[0]] is entry

    def test_two_tasklets_chained(self):
        sdfg = with_local.to_sdfg()
        assert len(sdfg.start_state.tasklets()) == 2
        sdfg.validate()


class TestSequencing:
    def test_two_kernels_share_access_node(self):
        sdfg = two_kernels.to_sdfg()
        state = sdfg.start_state
        b_nodes = [n for n in state.data_nodes() if n.data == "B"]
        # One version: written by kernel 1, read by kernel 2.
        assert len(b_nodes) == 1
        assert len(state.in_edges(b_nodes[0])) == 1
        assert len(state.out_edges(b_nodes[0])) == 1

    def test_write_after_write_versions(self):
        @program
        def waw(A: float64[I], B: float64[I]):
            for i in pmap(I):
                B[i] = A[i]
            for i in pmap(I):
                B[i] = A[i] * 2.0

        sdfg = waw.to_sdfg()
        b_nodes = [n for n in sdfg.start_state.data_nodes() if n.data == "B"]
        assert len(b_nodes) == 2


class TestScalars:
    def test_scalar_parameter(self):
        sdfg = scaled.to_sdfg()
        assert isinstance(sdfg.arrays["alpha"], Scalar)
        assert "alpha" in sdfg.input_containers()

    def test_scalar_read_through_scope(self):
        sdfg = scaled.to_sdfg()
        state = sdfg.start_state
        entry = state.map_entries()[0]
        datas = {e.data.memlet.data for e in state.in_edges(entry)}
        assert datas == {"A", "alpha"}


class TestBounds:
    def test_tuple_bounds(self):
        @program
        def interior(A: float64[I], B: float64[I]):
            for i in pmap((1, I - 1)):
                B[i] = A[i]

        entry = interior.to_sdfg().start_state.map_entries()[0]
        r = entry.map.ranges[0]
        assert str(r.begin) == "1"
        assert str(r.end) == "-2 + I"

    def test_string_bounds(self):
        @program
        def strided(A: float64[I], B: float64[I]):
            for i in pmap("0:I:2"):
                B[i] = A[i]

        entry = strided.to_sdfg().start_state.map_entries()[0]
        assert str(entry.map.ranges[0].step) == "2"

    def test_keyword_bounds(self):
        @program
        def kw(A: float64[I], B: float64[I]):
            for i in pmap(i=I):
                B[i] = A[i]

        sdfg = kw.to_sdfg()
        assert sdfg.start_state.map_entries()[0].map.params == ["i"]

    def test_integer_bounds(self):
        @program
        def fixed(A: float64[8], B: float64[8]):
            for i in pmap(8):
                B[i] = A[i]

        sdfg = fixed.to_sdfg()
        assert sdfg.start_state.map_entries()[0].map.ranges[0].size() == 8


class TestZeroInput:
    def test_constant_write(self):
        @program
        def zero(C: float64[I, J]):
            for i, j in pmap(I, J):
                C[i, j] = 0.0

        sdfg = zero.to_sdfg()
        state = sdfg.start_state
        tasklet = state.tasklets()[0]
        # Ordering edge keeps the tasklet inside the scope.
        assert state.scope_dict()[tasklet] is state.map_entries()[0]


class TestErrors:
    def assert_frontend_error(self, fn, match=None):
        with pytest.raises(FrontendError, match=match):
            fn.to_sdfg()

    def test_pmap_outside_error(self):
        with pytest.raises(FrontendError):
            pmap(3)

    def test_unknown_name(self):
        @program
        def bad(A: float64[I]):
            for i in pmap(I):
                A[i] = mystery + 1  # noqa: F821

        self.assert_frontend_error(bad, "unknown name")

    def test_range_loop_rejected(self):
        @program
        def bad(A: float64[I]):
            for i in range(4):
                A[i] = 1.0

        self.assert_frontend_error(bad, "pmap")

    def test_missing_annotation(self):
        @program
        def bad(A):
            for i in pmap(I):
                A[i] = 1.0

        self.assert_frontend_error(bad, "annotation")

    def test_arity_mismatch(self):
        @program
        def bad(A: float64[I]):
            for i, j in pmap(I):
                A[i] = 1.0

        self.assert_frontend_error(bad)

    def test_rank_mismatch(self):
        @program
        def bad(A: float64[I, J]):
            for i in pmap(I):
                A[i] = 1.0

        self.assert_frontend_error(bad, "rank")

    def test_bad_call(self):
        @program
        def bad(A: float64[I]):
            for i in pmap(I):
                A[i] = print(1)

        self.assert_frontend_error(bad, "not allowed")

    def test_slice_in_tasklet(self):
        @program
        def bad(A: float64[I], B: float64[I]):
            for i in pmap(I):
                B[i] = A[0:2]

        self.assert_frontend_error(bad)

    def test_assign_to_param(self):
        @program
        def bad(A: float64[I]):
            for i in pmap(I):
                i = 3

        self.assert_frontend_error(bad, "loop parameter")

    def test_return_value_rejected(self):
        @program
        def bad(A: float64[I]):
            return A

        self.assert_frontend_error(bad)

    def test_unsupported_toplevel(self):
        @program
        def bad(A: float64[I]):
            x = 3

        self.assert_frontend_error(bad, "top-level")


class TestLazyAPI:
    def test_repro_namespace(self):
        assert repro.program is program
        assert repro.pmap is pmap

    def test_validates(self):
        for prog in [outer_product, matmul, stencil1d, with_local, two_kernels]:
            prog.to_sdfg().validate()

    def test_float32(self):
        @program
        def f32(A: float32[I], B: float32[I]):
            for i in pmap(I):
                B[i] = A[i]

        assert f32.to_sdfg().arrays["A"].dtype == float32
