"""Tests for search/filter navigation and playback-frame rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ReproError
from repro.frontend import pmap, program
from repro.sdfg import AccessNode, Tasklet
from repro.sdfg.dtypes import float64
from repro.tool import Session
from repro.symbolic import symbols

I, J = symbols("I J")


@program
def two_kernels(A: float64[I], B: float64[I], C: float64[I]):
    for i in pmap(I):
        B[i] = A[i] * 2.0
    for i in pmap(I):
        C[i] = B[i] + 1.0


@pytest.fixture
def session():
    return Session(two_kernels)


class TestSearch:
    def test_finds_maps(self, session):
        gv = session.global_view()
        hits = gv.search("map_")
        assert {h.label for h in hits} == {"map_0", "map_1"}

    def test_case_insensitive(self, session):
        gv = session.global_view()
        assert gv.search("MAP_0")

    def test_finds_containers(self, session):
        gv = session.global_view()
        labels = {h.label for h in gv.search("B")}
        assert "B" in labels

    def test_no_hits(self, session):
        assert session.global_view().search("zzz") == []


class TestFilter:
    def test_hide_access_nodes(self, session):
        gv = session.global_view()
        visible = gv.filter_nodes(["AccessNode"])
        assert visible
        assert not any(isinstance(n, AccessNode) for n in visible)
        assert any(isinstance(n, Tasklet) for n in visible)

    def test_hide_nothing(self, session):
        gv = session.global_view()
        assert len(gv.filter_nodes([])) == len(gv.state.nodes())


class TestPlayback:
    def test_frames_cover_iterations(self, session):
        lv = session.local_view({"I": 4})
        frames = list(lv.playback())
        assert len(frames) == 8  # two kernels x four iterations

    def test_render_frame(self, session):
        lv = session.local_view({"I": 4})
        svgs = lv.render_playback_frame(0)
        assert set(svgs) == {"A", "B"}
        for svg in svgs.values():
            ET.fromstring(svg)
        # The first frame highlights exactly the first iteration's elements.
        assert "#37c871" in svgs["A"]

    def test_render_frame_restricted(self, session):
        lv = session.local_view({"I": 4})
        svgs = lv.render_playback_frame(0, data="A")
        assert list(svgs) == ["A"]

    def test_bad_step(self, session):
        lv = session.local_view({"I": 4})
        with pytest.raises(ReproError):
            lv.render_playback_frame(999)

    def test_frames_progress_through_elements(self, session):
        lv = session.local_view({"I": 3})
        first = lv.result.events_at_step(0)
        second = lv.result.events_at_step(1)
        assert {e.indices for e in first if e.data == "A"} == {(0,)}
        assert {e.indices for e in second if e.data == "A"} == {(1,)}


class TestBoundsValidation:
    def test_constant_overrun_rejected(self):
        from repro.errors import InvalidSDFGError
        from repro.sdfg import SDFG, Memlet, dtypes

        sdfg = SDFG("oob")
        sdfg.add_array("A", [4], dtypes.float64)
        sdfg.add_array("B", [4], dtypes.float64)
        state = sdfg.add_state()
        a, b = state.add_access("A"), state.add_access("B")
        t = state.add_tasklet("t", ["x"], ["y"], "y = x")
        state.add_edge(a, None, t, "x", Memlet("A", "7"))  # out of bounds
        state.add_edge(t, "y", b, None, Memlet("B", "0"))
        with pytest.raises(InvalidSDFGError, match="extent"):
            sdfg.validate()

    def test_negative_index_rejected(self):
        from repro.errors import InvalidSDFGError
        from repro.sdfg import SDFG, Memlet, dtypes
        from repro.symbolic import Range, Subset

        sdfg = SDFG("neg")
        sdfg.add_array("A", [4], dtypes.float64)
        sdfg.add_array("B", [4], dtypes.float64)
        state = sdfg.add_state()
        a, b = state.add_access("A"), state.add_access("B")
        t = state.add_tasklet("t", ["x"], ["y"], "y = x")
        state.add_edge(a, None, t, "x", Memlet("A", Subset([Range(-1, -1)])))
        state.add_edge(t, "y", b, None, Memlet("B", "0"))
        with pytest.raises(InvalidSDFGError, match="negative"):
            sdfg.validate()

    def test_symbolic_bounds_not_flagged(self):
        # Symbolic subsets (e.g. 0:I) cannot be proven wrong statically.
        two_kernels.to_sdfg().validate()


class TestGlobalViewFolding:
    def test_collapse_all_then_render(self, session):
        gv = session.global_view()
        gv.folds.collapse_all()
        svg = gv.render(show_minimap=False)
        import xml.etree.ElementTree as ET

        ET.fromstring(svg)
        assert svg.count("[+]") == 2  # both kernels summarized

    def test_zoom_through_session(self, session):
        gv = session.global_view()
        full = gv.render(show_minimap=False, zoom=1.0)
        coarse = gv.render(show_minimap=False, zoom=0.2)
        assert full.count("<text") > coarse.count("<text")
