"""Tests for ``repro-view tune`` (the auto-tuning CLI)."""

import json
from pathlib import Path

import pytest

from repro.tool.cli import main as cli_main
from repro.tool.tune_cli import main as tune_main

CLOUDSC = str(
    Path(__file__).resolve().parents[2] / "src" / "repro" / "apps" / "cloudsc.py"
)

CLOUDSC_ARGS = [
    CLOUDSC,
    "--builder", "build_sdfg",
    "--params", "NBLOCKS=16,KLEV=8",
    "--capacity", "8",
    "--beam", "2",
    "--depth", "1",
    "--budget", "20",
    "--quiet",
]


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(
        "from repro.frontend import pmap, program\n"
        "from repro.sdfg.dtypes import float64\n"
        "from repro.symbolic import symbols\n"
        "I, J = symbols('I J')\n"
        "@program\n"
        "def copy2d(A: float64[I, J], B: float64[I, J]):\n"
        "    for i, j in pmap(I, J):\n"
        "        B[i, j] = A[i, j] * 2.0\n"
    )
    return str(path)


class TestTuneCli:
    def test_builder_path(self, capsys):
        code = tune_main(CLOUDSC_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline: 28672 bytes moved" in out
        assert "reduction" in out

    def test_program_path(self, program_file, capsys):
        code = tune_main([
            program_file, "--params", "I=8,J=8",
            "--beam", "2", "--depth", "1", "--budget", "10", "--quiet",
        ])
        assert code == 0
        assert "best:" in capsys.readouterr().out

    def test_json_and_roofline_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "tune.json"
        svg_path = tmp_path / "roof.svg"
        code = tune_main(CLOUDSC_ARGS + [
            "--json", str(json_path), "--roofline", str(svg_path),
        ])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["best"]["moved_bytes"] <= payload["baseline"]["moved_bytes"]
        assert payload["trajectory"]
        svg = svg_path.read_text()
        assert svg.startswith("<svg ") and "machine balance" in svg

    def test_dispatch_through_main_cli(self, capsys):
        assert cli_main(["tune", *CLOUDSC_ARGS]) == 0
        assert "best:" in capsys.readouterr().out

    def test_progress_on_stderr(self, capsys):
        args = [a for a in CLOUDSC_ARGS if a != "--quiet"]
        assert tune_main(args) == 0
        assert "round 1:" in capsys.readouterr().err

    def test_missing_module(self, capsys):
        assert tune_main([
            "/nonexistent.py", "--params", "I=8",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_builder(self, capsys):
        assert tune_main([
            CLOUDSC, "--builder", "nope", "--params", "NBLOCKS=4,KLEV=2",
        ]) == 1
        assert "no callable" in capsys.readouterr().err

    def test_empty_params(self, capsys):
        assert tune_main([CLOUDSC, "--builder", "build_sdfg",
                          "--params", ""]) == 1
        assert "at least one symbol" in capsys.readouterr().err

    def test_unknown_transform(self, capsys):
        assert tune_main(CLOUDSC_ARGS + ["--transforms", "bogus"]) == 1
        assert "bogus" in capsys.readouterr().err
