"""Tests for the Session facade and the CLI."""

import xml.etree.ElementTree as ET

import pytest

from repro.apps import hdiff as H
from repro.errors import ReproError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.tool import Session
from repro.tool.cli import EXIT_SWEEP_FAILURES, main as cli_main
from repro.symbolic import symbols

I, J = symbols("I J")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@pytest.fixture
def session():
    return Session(outer_product)


class TestSession:
    def test_accepts_program_and_sdfg(self):
        Session(outer_product)
        Session(outer_product.to_sdfg())
        with pytest.raises(ReproError):
            Session(42)


class TestGlobalView:
    def test_metrics(self, session):
        gv = session.global_view()
        env = {"I": 16, "J": 8}
        assert gv.total_movement(env) == (16 + 8 + 16 * 8) * 8
        assert gv.total_ops(env) == 16 * 8

    def test_heatmaps(self, session):
        gv = session.global_view()
        env = {"I": 16, "J": 8}
        assert len(gv.movement_heatmap(env)) > 0
        assert len(gv.intensity_heatmap(env)) > 0
        assert len(gv.opcount_heatmap(env)) > 0

    def test_render_with_overlays(self, session):
        gv = session.global_view()
        svg = gv.render(env={"I": 8, "J": 8}, edge_overlay="movement",
                        node_overlay="intensity")
        ET.fromstring(svg)

    def test_render_rejects_unknown_overlay(self, session):
        gv = session.global_view()
        with pytest.raises(ReproError):
            gv.render(env={"I": 4, "J": 4}, edge_overlay="???")
        with pytest.raises(ReproError):
            gv.render(env={"I": 4, "J": 4}, node_overlay="???")

    def test_movement_overlay_requires_env(self, session):
        with pytest.raises(ReproError):
            session.global_view().render(edge_overlay="movement")

    def test_scaling_sweep(self, session):
        gv = session.global_view()
        result = gv.scaling_sweep("I", [8, 16, 32], {"I": 8, "J": 8})
        assert result.values[0] < result.values[1] < result.values[2]

    def test_rank_parameters(self, session):
        gv = session.global_view()
        ranking = dict(gv.rank_parameters({"I": 8, "J": 8}))
        assert set(ranking) == {"I", "J"}

    def test_outline(self, session):
        assert session.global_view().outline().find("main") is not None


class TestLocalView:
    def test_access_heatmap(self, session):
        lv = session.local_view({"I": 3, "J": 4})
        counts = lv.access_heatmap("A")
        assert counts == {(0,): 4, (1,): 4, (2,): 4}

    def test_sliders(self, session):
        lv = session.local_view({"I": 3, "J": 4})
        sliders = lv.sliders()
        sliders.set("i", 1)
        sliders.set("j", 2)
        assert sliders.highlighted_elements()["C"] == {(1, 2)}

    def test_cache_line_neighbors(self, session):
        lv = session.local_view({"I": 8, "J": 8}, line_size=32)
        neighbors = lv.cache_line_neighbors("A", (0,))
        assert (1,) in neighbors

    def test_reuse_heatmap(self, session):
        lv = session.local_view({"I": 4, "J": 4})
        heat = lv.reuse_heatmap("A", stat="median")
        assert heat  # A is re-read: finite distances exist
        with pytest.raises(ReproError):
            lv.reuse_heatmap("A", stat="mode")

    def test_miss_counts_and_movement(self, session):
        lv = session.local_view({"I": 8, "J": 8}, capacity_lines=1024)
        misses = lv.miss_counts()
        moved = lv.physical_movement()
        assert set(misses) == set(moved)
        for name, counts in misses.items():
            assert moved[name] == counts.misses * 64

    def test_miss_heatmap(self, session):
        lv = session.local_view({"I": 8, "J": 8})
        heat = lv.miss_heatmap("A")
        assert sum(heat.values()) >= 1  # at least the cold miss

    def test_render_container_and_histogram(self, session):
        lv = session.local_view({"I": 3, "J": 4})
        svg = lv.render_container("A", values=dict(lv.access_heatmap("A")))
        ET.fromstring(svg)
        hist = lv.render_reuse_histogram("A", (0,))
        ET.fromstring(hist)

    def test_histogram_unknown_element(self, session):
        lv = session.local_view({"I": 3, "J": 4})
        with pytest.raises(ReproError):
            lv.render_reuse_histogram("A", (99,))

    def test_invalidate(self, session):
        lv = session.local_view({"I": 3, "J": 4})
        first = lv.result
        lv.invalidate()
        assert lv.result is not first

    def test_related(self, session):
        lv = session.local_view({"I": 3, "J": 4})
        counts = lv.related([("C", (1, 2))])
        assert counts[("A", (1,))] == 1
        assert counts[("B", (2,))] == 1


class TestEndToEndReport:
    def test_hdiff_report(self, tmp_path):
        session = Session(H.build_sdfg())
        report = session.report()
        gv = session.global_view()
        report.add_svg(gv.render(env=H.LOCAL_VIEW_SIZES, edge_overlay="movement"))
        lv = session.local_view(H.LOCAL_VIEW_SIZES, capacity_lines=4)
        report.add_table(
            ["container", "moved bytes"],
            sorted(lv.physical_movement().items()),
        )
        path = tmp_path / "hdiff.html"
        report.save(str(path))
        text = path.read_text()
        assert "in_field" in text and "<svg" in text


class TestCLI:
    PROGRAM_SOURCE = '''
import repro
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols

I, J = symbols("I J")

@repro.program
def demo(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in repro.pmap(I, J):
        C[i, j] = A[i] * B[j]
'''

    def write_module(self, tmp_path):
        module = tmp_path / "demo_prog.py"
        module.write_text(self.PROGRAM_SOURCE)
        return module

    def test_full_report(self, tmp_path, capsys):
        module = self.write_module(tmp_path)
        out = tmp_path / "report.html"
        rc = cli_main([
            str(module), "--params", "I=8,J=8", "--local", "I=3,J=4",
            "-o", str(out),
        ])
        assert rc == 0
        text = out.read_text()
        assert "Global view" in text and "Local view" in text
        assert "total logical movement" in text

    def test_without_params(self, tmp_path):
        module = self.write_module(tmp_path)
        out = tmp_path / "r.html"
        assert cli_main([str(module), "-o", str(out)]) == 0
        assert "Pass --params" in out.read_text()

    def test_missing_file(self, tmp_path, capsys):
        rc = cli_main([str(tmp_path / "nope.py")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_function(self, tmp_path, capsys):
        module = self.write_module(tmp_path)
        rc = cli_main([str(module), "--function", "zzz"])
        assert rc == 1

    def test_bad_params(self, tmp_path, capsys):
        module = self.write_module(tmp_path)
        rc = cli_main([str(module), "--params", "I8"])
        assert rc == 1

    def test_sweep_table(self, tmp_path):
        module = self.write_module(tmp_path)
        out = tmp_path / "sweep.html"
        rc = cli_main([
            str(module), "--local", "I=3,J=4",
            "--sweep", "I=3,4", "--sweep", "J=2,4",
            "-o", str(out),
        ])
        assert rc == 0
        text = out.read_text()
        assert "Parametric sweep" in text
        assert "4 sweep points" in text
        assert "I=4, J=2" in text

    def test_sweep_with_workers(self, tmp_path):
        module = self.write_module(tmp_path)
        out = tmp_path / "sweep.html"
        rc = cli_main([
            str(module), "--local", "I=3,J=4",
            "--sweep", "I=2,3,4", "--workers", "2",
            "-o", str(out),
        ])
        assert rc == 0
        assert "2 workers" in out.read_text()

    def test_bad_sweep_axis(self, tmp_path, capsys):
        module = self.write_module(tmp_path)
        rc = cli_main([
            str(module), "--local", "I=3,J=4", "--sweep", "I:3,4",
        ])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestCLIObservability:
    def write_module(self, tmp_path):
        module = tmp_path / "demo_prog.py"
        module.write_text(TestCLI.PROGRAM_SOURCE)
        return module

    def test_trace_and_metrics_exports(self, tmp_path, capsys):
        import json

        module = self.write_module(tmp_path)
        out = tmp_path / "report.html"
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = cli_main([
            str(module), "--local", "I=3,J=4", "--sweep", "I=3,4",
            "-o", str(out), "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert f"trace written to {trace}" in captured
        assert f"metrics written to {metrics}" in captured
        trace_doc = json.loads(trace.read_text())
        names = {span["name"] for span in trace_doc["spans"]}
        assert "sweep" in names and "sweep.point" in names
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["counters"]["sweep.points"] == 2
        assert metrics_doc["histograms"]["sweep.point_seconds"]["count"] == 2

    def test_explain_cache_prints_pass_report(self, tmp_path, capsys):
        module = self.write_module(tmp_path)
        out = tmp_path / "report.html"
        rc = cli_main([
            str(module), "--params", "I=8,J=8", "--local", "I=3,J=4",
            "-o", str(out), "--explain-cache",
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "analysis-pass cache report:" in captured
        assert "local.trace" in captured
        assert "first run" in captured
        assert "simulation cache:" in captured

    def test_failed_sweep_points_are_reported_and_exit_nonzero(
        self, tmp_path, capsys
    ):
        # Sweeping only I leaves J unassigned at every point: each point
        # fails deterministically, the report records the failures and
        # the command exits non-zero so scripts cannot mistake the
        # partial report for success.
        module = self.write_module(tmp_path)
        out = tmp_path / "report.html"
        rc = cli_main([
            str(module), "--sweep", "I=3,4", "-o", str(out),
        ])
        assert rc == EXIT_SWEEP_FAILURES
        text = out.read_text()
        assert "failed (error)" in text
        assert "2 failed" in text
        err = capsys.readouterr().err
        assert "warning: 2 of 2 sweep points failed" in err
        assert "2 sweep point(s) failed" in err


class TestCLISweepFailureExit:
    """A partially-failed sweep must list the failures and exit non-zero."""

    FAILING_SOURCE = '''
import repro
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols

I, J = symbols("I J")

@repro.program
def fragile(A: float64[I], C: float64[I, J]):
    for i, j in repro.pmap(I, J):
        C[i, j] = A[i // (J - 1)]
'''

    def write_module(self, tmp_path):
        module = tmp_path / "fragile_prog.py"
        module.write_text(self.FAILING_SOURCE)
        return module

    def test_partial_failure_lists_points_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        # J=1 divides an index expression by zero; J=2 and J=3 succeed.
        module = self.write_module(tmp_path)
        out = tmp_path / "report.html"
        rc = cli_main([
            str(module), "--local", "I=2,J=2",
            "--sweep", "J=1,2,3", "-o", str(out),
        ])
        assert rc == EXIT_SWEEP_FAILURES
        text = out.read_text()
        # The failing point is listed in the report, next to the
        # successful ones.
        assert "1 of 3 sweep points failed" in text
        assert "failed (error)" in text
        assert "3 sweep points, 1 failed" in text
        err = capsys.readouterr().err
        assert "warning: 1 of 3 sweep points failed" in err
        assert "1 sweep point(s) failed" in err

    def test_fully_successful_sweep_still_exits_zero(self, tmp_path):
        module = self.write_module(tmp_path)
        out = tmp_path / "report.html"
        rc = cli_main([
            str(module), "--local", "I=2,J=2",
            "--sweep", "J=2,3", "-o", str(out),
        ])
        assert rc == 0
        assert "failed" not in out.read_text()
