"""Tests for the session-level simulation cache and stage timings."""

from repro.apps import hdiff
from repro.tool.session import Session, SimulationCache


def make_session():
    return Session(hdiff.build_sdfg())


SIZES = {"I": 3, "J": 3, "K": 2}
OTHER = {"I": 4, "J": 3, "K": 2}


class TestSimulationCache:
    def test_lru_eviction(self):
        cache = SimulationCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"
        cache.put(("c",), 3)  # evicts "b", the least recently used
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1 and cache.get(("c",)) == 3

    def test_hit_miss_counters(self):
        cache = SimulationCache()
        assert cache.get(("x",)) is None
        cache.put(("x",), 42)
        assert cache.get(("x",)) == 42
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1

    def test_bounded(self):
        cache = SimulationCache(maxsize=3)
        for n in range(10):
            cache.put((n,), n)
        assert len(cache) == 3


class TestSessionCaching:
    def test_repeat_query_hits_cache(self):
        session = make_session()
        first = session.local_view(SIZES).result
        second = session.local_view(SIZES).result
        assert second is first  # the simulation was reused, not rerun
        assert session.cache_info()["hits"] >= 1

    def test_different_params_simulate_fresh(self):
        session = make_session()
        a = session.local_view(SIZES).result
        b = session.local_view(OTHER).result
        assert a is not b
        assert len(a.events) != len(b.events)

    def test_fast_and_slow_cached_separately(self):
        session = make_session()
        fast = session.local_view(SIZES, fast=True).result
        slow = session.local_view(SIZES, fast=False).result
        assert fast is not slow

    def test_downstream_results_cached(self):
        session = make_session()
        lv1 = session.local_view(SIZES)
        lv2 = session.local_view(SIZES)
        d1 = lv1._distances()
        d2 = lv2._distances()
        assert d2 is d1

    def test_invalidate_clears_shared_cache(self):
        session = make_session()
        lv = session.local_view(SIZES)
        first = lv.result
        lv.invalidate()
        assert lv.result is not first
        # A fresh view must not resurrect the stale entry either.
        assert session.local_view(SIZES).result is lv.result

    def test_standalone_local_view_unaffected(self):
        from repro.tool.session import LocalView

        sdfg = hdiff.build_sdfg()
        lv = LocalView(sdfg, SIZES, sdfg.start_state)
        assert lv.session_cache is None
        assert lv.result.events  # simulates without a cache attached

    def test_miss_counts_identical_across_paths(self):
        session = make_session()
        fast = session.local_view(SIZES, fast=True).miss_counts()
        slow = session.local_view(SIZES, fast=False).miss_counts()
        assert {k: (v.hits, v.cold, v.capacity) for k, v in fast.items()} == {
            k: (v.hits, v.cold, v.capacity) for k, v in slow.items()
        }


class TestSessionTimings:
    def test_stages_recorded(self):
        session = make_session()
        lv = session.local_view(SIZES)
        lv.miss_counts()
        recorded = set(session.timings.stages())
        assert {"enumerate", "evaluate", "layout", "stackdist", "classify"} <= recorded
        assert session.timings.total() > 0

    def test_report_renders(self):
        session = make_session()
        session.local_view(SIZES).miss_counts()
        report = session.timings.report()
        assert "stackdist" in report and "ms" in report
