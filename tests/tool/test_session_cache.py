"""Tests for the session-level simulation cache and stage timings."""

from repro.apps import hdiff
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols
from repro.tool.session import Session, SimulationCache

I, J = symbols("I J")


def make_session():
    return Session(hdiff.build_sdfg())


SIZES = {"I": 3, "J": 3, "K": 2}
OTHER = {"I": 4, "J": 3, "K": 2}


class TestSimulationCache:
    def test_lru_eviction(self):
        cache = SimulationCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"
        cache.put(("c",), 3)  # evicts "b", the least recently used
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1 and cache.get(("c",)) == 3

    def test_hit_miss_counters(self):
        cache = SimulationCache()
        assert cache.get(("x",)) is None
        cache.put(("x",), 42)
        assert cache.get(("x",)) == 42
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1

    def test_bounded(self):
        cache = SimulationCache(maxsize=3)
        for n in range(10):
            cache.put((n,), n)
        assert len(cache) == 3


class TestSessionCaching:
    def test_repeat_query_hits_cache(self):
        session = make_session()
        first = session.local_view(SIZES).result
        second = session.local_view(SIZES).result
        assert second is first  # the simulation was reused, not rerun
        assert session.cache_info()["hits"] >= 1

    def test_different_params_simulate_fresh(self):
        session = make_session()
        a = session.local_view(SIZES).result
        b = session.local_view(OTHER).result
        assert a is not b
        assert len(a.events) != len(b.events)

    def test_fast_and_slow_cached_separately(self):
        session = make_session()
        fast = session.local_view(SIZES, fast=True).result
        slow = session.local_view(SIZES, fast=False).result
        assert fast is not slow

    def test_downstream_results_cached(self):
        session = make_session()
        lv1 = session.local_view(SIZES)
        lv2 = session.local_view(SIZES)
        d1 = lv1._distances()
        d2 = lv2._distances()
        assert d2 is d1

    def test_invalidate_clears_shared_cache(self):
        session = make_session()
        lv = session.local_view(SIZES)
        first = lv.result
        lv.invalidate()
        assert lv.result is not first
        # A fresh view must not resurrect the stale entry either.
        assert session.local_view(SIZES).result is lv.result

    def test_standalone_local_view_unaffected(self):
        from repro.tool.session import LocalView

        sdfg = hdiff.build_sdfg()
        lv = LocalView(sdfg, SIZES, sdfg.start_state)
        assert lv.session_cache is None
        assert lv.result.events  # simulates without a cache attached

    def test_miss_counts_identical_across_paths(self):
        session = make_session()
        fast = session.local_view(SIZES, fast=True).miss_counts()
        slow = session.local_view(SIZES, fast=False).miss_counts()
        assert {k: (v.hits, v.cold, v.capacity) for k, v in fast.items()} == {
            k: (v.hits, v.cold, v.capacity) for k, v in slow.items()
        }


class TestSessionTimings:
    def test_stages_recorded(self):
        session = make_session()
        lv = session.local_view(SIZES)
        lv.miss_counts()
        recorded = set(session.timings.stages())
        # The analytic engine serves classification, so the enumeration
        # stage spans (layout/stackdist) are replaced by its own span.
        assert {"enumerate", "evaluate", "locality:analytic", "classify"} <= recorded
        assert session.timings.total() > 0

    def test_report_renders(self):
        session = make_session()
        session.local_view(SIZES).miss_counts()
        report = session.timings.report()
        assert "locality:analytic" in report and "ms" in report


def _make_kernel(variant: int):
    """Two same-named, same-signature programs with different access
    patterns — the shape of workload where an ``id()``-keyed cache can
    serve stale results once CPython recycles object ids."""
    if variant == 0:

        @program
        def kernel(A: float64[I], B: float64[J], C: float64[I, J]):
            for i, j in pmap(I, J):
                C[i, j] = A[i] * B[j]

    else:

        @program
        def kernel(A: float64[I], B: float64[J], C: float64[I, J]):
            for i, j in pmap(I, J):
                C[i, j] = C[i, j] + A[i] * B[j]  # also *reads* C

    return kernel


class TestContentBasedCacheKeys:
    """Regression tests for the stale-cache bug: session cache keys used
    ``id(state)`` / ``id(sdfg)``, which CPython reuses after garbage
    collection, so a long-lived session that loads a second program could
    silently serve the first program's results."""

    KERNEL_SIZES = {"I": 3, "J": 4}

    def test_sim_key_is_content_based(self):
        session = make_session()
        key = session.local_view(SIZES)._sim_key()
        assert key[0] == (session.sdfg.name, 0)  # (scope, ...) prefix
        assert key[1] == session.sdfg.start_state.name
        assert id(session.sdfg) not in key
        assert id(session.sdfg.start_state) not in key

    def test_load_bumps_the_cache_generation(self):
        session = make_session()
        before = session.local_view(SIZES)._sim_key()
        session.load(hdiff.build_sdfg())
        after = session.local_view(SIZES)._sim_key()
        assert before != after  # same name, same params — new generation

    def test_reload_never_serves_stale_results(self):
        session = Session(_make_kernel(0))
        first = session.local_view(self.KERNEL_SIZES)
        accesses_v0 = first.result.num_events

        # Same SDFG name, same state labels, same parameters — only the
        # access pattern differs.  Content-based keys must still miss.
        session.load(_make_kernel(1))
        second = session.local_view(self.KERNEL_SIZES)
        accesses_v1 = second.result.num_events
        assert accesses_v1 != accesses_v0  # v1 also reads C: more accesses
        assert second.result is not first.result

    def test_reload_invalidates_sweep_cache_too(self):
        session = Session(_make_kernel(0))
        v0 = session.sweep([self.KERNEL_SIZES])
        session.load(_make_kernel(1))
        misses_before = session.cache.misses
        v1 = session.sweep([self.KERNEL_SIZES])
        assert session.cache.misses > misses_before  # not served from cache
        assert v1[0].total_accesses != v0[0].total_accesses

    def test_sdfg_setter_is_equivalent_to_load(self):
        session = Session(_make_kernel(0))
        session.local_view(self.KERNEL_SIZES).result
        session.sdfg = _make_kernel(1)
        lv = session.local_view(self.KERNEL_SIZES)
        assert lv._sim_key()[0] == (session.sdfg.name, 1)


class TestSimulationCacheByteBudget:
    def test_byte_bound_evicts_before_count_bound(self):
        cache = SimulationCache(maxsize=100, max_bytes=400, sizeof=len)
        for n in range(6):
            cache.put((n,), "x" * 100)
        assert len(cache) < 6  # count bound alone would keep all six
        assert cache.approx_bytes <= 400
        assert (5,) in cache  # newest survives

    def test_lru_order_respected_by_byte_eviction(self):
        cache = SimulationCache(maxsize=100, max_bytes=250, sizeof=len)
        cache.put(("a",), "x" * 100)
        cache.put(("b",), "x" * 100)
        cache.get(("a",))  # refresh: "b" is now least recently used
        cache.put(("c",), "x" * 100)
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache

    def test_overwrite_replaces_size(self):
        cache = SimulationCache(maxsize=8, max_bytes=10_000, sizeof=len)
        cache.put(("k",), "x" * 5000)
        cache.put(("k",), "x" * 10)
        assert cache.approx_bytes == 10

    def test_info_reports_bytes(self):
        cache = SimulationCache(maxsize=8, max_bytes=1234, sizeof=len)
        cache.put(("k",), "x" * 10)
        info = cache.info()
        assert info["approx_bytes"] == 10
        assert info["max_bytes"] == 1234

    def test_unbounded_bytes_by_default(self):
        cache = SimulationCache(maxsize=3)
        cache.put(("k",), "x" * 100_000)
        assert ("k",) in cache
        assert cache.info()["max_bytes"] == 0  # 0 means "no byte bound"

    def test_sizing_failure_never_breaks_caching(self):
        def broken(value):
            raise RuntimeError("sizeof exploded")

        cache = SimulationCache(maxsize=4, max_bytes=100, sizeof=broken)
        cache.put(("k",), "value")
        assert cache.get(("k",)) == "value"
        assert cache.approx_bytes == 0  # unmeasurable counts as zero
