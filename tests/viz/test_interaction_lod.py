"""Tests for interaction state, folding/LoD and navigation overviews."""

import pytest

from repro.errors import VisualizationError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.viz.interaction import ParameterSliders
from repro.viz.lod import DetailLevel, FoldedScope, FoldState, visible_detail
from repro.viz.overview import Minimap, Viewport, build_outline
from repro.symbolic import symbols

I, J = symbols("I J")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


@program
def two_kernels(A: float64[I], B: float64[I], C: float64[I]):
    for i in pmap(I):
        B[i] = A[i] * 2.0
    for i in pmap(I):
        C[i] = B[i] + 1.0


def sliders(env=None):
    sdfg = outer_product.to_sdfg()
    state = sdfg.start_state
    entry = state.map_entries()[0]
    return ParameterSliders(sdfg, state, entry, env or {"I": 3, "J": 4})


class TestParameterSliders:
    def test_fig3_highlight(self):
        """Paper Fig. 3: sliders i=1, j=2 highlight A[1], B[2], C[1,2]."""
        s = sliders()
        s.set("i", 1)
        s.set("j", 2)
        highlights = s.highlighted_elements()
        assert highlights["A"] == {(1,)}
        assert highlights["B"] == {(2,)}
        assert highlights["C"] == {(1, 2)}

    def test_initial_values_are_range_start(self):
        assert sliders().values() == {"i": 0, "j": 0}

    def test_bounds(self):
        assert sliders().bounds("i") == (0, 2)
        assert sliders().bounds("j") == (0, 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(VisualizationError):
            sliders().set("i", 5)

    def test_unknown_param(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            sliders().set("z", 0)


class TestFolding:
    def test_collapse_hides_scope(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        fold = FoldState(state)
        entry = state.map_entries()[0]
        fold.collapse(entry)
        visible = fold.visible_nodes()
        summaries = [v for v in visible if isinstance(v, FoldedScope)]
        assert len(summaries) == 1
        assert summaries[0].hidden_count >= 2  # tasklet + exit at least
        # No raw tasklets remain visible.
        from repro.sdfg import Tasklet

        assert not any(isinstance(v, Tasklet) for v in visible)

    def test_expand_restores(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        fold = FoldState(state)
        entry = state.map_entries()[0]
        fold.collapse(entry)
        fold.expand(entry)
        assert len(fold.visible_nodes()) == len(state.nodes())

    def test_toggle(self):
        sdfg = outer_product.to_sdfg()
        fold = FoldState(sdfg.start_state)
        entry = sdfg.start_state.map_entries()[0]
        assert fold.toggle(entry) is True
        assert fold.toggle(entry) is False

    def test_collapse_all(self):
        sdfg = two_kernels.to_sdfg()
        fold = FoldState(sdfg.start_state)
        fold.collapse_all()
        summaries = [v for v in fold.visible_nodes() if isinstance(v, FoldedScope)]
        assert len(summaries) == 2

    def test_only_scopes_foldable(self):
        sdfg = outer_product.to_sdfg()
        fold = FoldState(sdfg.start_state)
        with pytest.raises(TypeError):
            fold.collapse(sdfg.start_state.tasklets()[0])


class TestDetailLevels:
    @pytest.mark.parametrize(
        "zoom,expected",
        [
            (1.0, DetailLevel.FULL),
            (0.8, DetailLevel.FULL),
            (0.5, DetailLevel.NODES),
            (0.2, DetailLevel.BLOCKS),
            (0.05, DetailLevel.OUTLINE),
        ],
    )
    def test_thresholds(self, zoom, expected):
        assert visible_detail(zoom) is expected

    def test_monotone_coarsening(self):
        order = [DetailLevel.OUTLINE, DetailLevel.BLOCKS, DetailLevel.NODES, DetailLevel.FULL]
        last = -1
        for zoom in [0.01, 0.2, 0.5, 1.0, 2.0]:
            level = order.index(visible_detail(zoom))
            assert level >= last
            last = level


class TestOutline:
    def test_hierarchy(self):
        outline = build_outline(outer_product.to_sdfg())
        assert outline.kind == "sdfg"
        state_entry = outline.children[0]
        assert state_entry.kind == "state"
        maps = [c for c in state_entry.children if c.kind == "map"]
        assert len(maps) == 1
        # The map's children include the tasklet.
        kinds = {c.kind for c in maps[0].children}
        assert "tasklet" in kinds

    def test_find(self):
        outline = build_outline(outer_product.to_sdfg())
        assert outline.find("main") is not None
        assert outline.find("missing") is None

    def test_walk_covers_everything(self):
        outline = build_outline(two_kernels.to_sdfg())
        labels = [e.label for e in outline.walk()]
        assert labels.count("map_0") == 1
        assert labels.count("map_1") == 1


class TestMinimap:
    def test_viewport_fraction(self):
        sdfg = outer_product.to_sdfg()
        mm = Minimap(sdfg.start_state)
        assert mm.viewport_fraction() == (1.0, 1.0)

    def test_focus_animation(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        mm = Minimap(state, Viewport(0, 0, 100, 100))
        tasklet = state.tasklets()[0]
        frames = mm.focus_on(tasklet, frames=8)
        assert len(frames) == 8
        box = mm.layout.box(tasklet)
        assert frames[-1].center == (box.x, box.y)
        # Motion is smooth: consecutive centers never jump more than the
        # total distance.
        assert mm.viewport.contains(box.x, box.y)

    def test_invalid_frames(self):
        sdfg = outer_product.to_sdfg()
        mm = Minimap(sdfg.start_state)
        with pytest.raises(ValueError):
            mm.focus_on(sdfg.start_state.tasklets()[0], frames=0)
