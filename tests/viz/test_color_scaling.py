"""Tests for color scales and adaptive heatmap scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VisualizationError
from repro.viz import (
    COLORBLIND_SCALE,
    GREEN_YELLOW_RED,
    Color,
    ColorScale,
    ExponentialScale,
    Heatmap,
    HistogramScale,
    LinearScale,
    MeanCenteredScale,
    MedianCenteredScale,
    ScalingMethod,
    make_scaling,
)


class TestColor:
    def test_hex_round_trip(self):
        assert Color.from_hex("#a1b2c3").to_hex() == "#a1b2c3"

    def test_invalid_hex(self):
        with pytest.raises(VisualizationError):
            Color.from_hex("#abcd")

    def test_out_of_range(self):
        with pytest.raises(VisualizationError):
            Color(300, 0, 0)

    def test_lerp_endpoints(self):
        a, b = Color(0, 0, 0), Color(255, 255, 255)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Color(128, 128, 128)

    def test_lerp_clamps(self):
        a, b = Color(0, 0, 0), Color(255, 255, 255)
        assert a.lerp(b, 2.0) == b

    def test_luminance_ordering(self):
        assert Color(255, 255, 255).luminance() > Color(0, 0, 0).luminance()


class TestColorScale:
    def test_gyr_midpoint_is_yellow(self):
        mid = GREEN_YELLOW_RED.sample(0.5)
        assert mid.r > 200 and mid.g > 180 and mid.b < 100

    def test_endpoints(self):
        low = GREEN_YELLOW_RED.sample(0.0)
        high = GREEN_YELLOW_RED.sample(1.0)
        assert low.g > low.r  # green
        assert high.r > high.g  # red

    def test_clamping(self):
        assert GREEN_YELLOW_RED.sample(-1) == GREEN_YELLOW_RED.sample(0)
        assert GREEN_YELLOW_RED.sample(2) == GREEN_YELLOW_RED.sample(1)

    def test_reversed(self):
        rev = GREEN_YELLOW_RED.reversed()
        assert rev.sample(0.0) == GREEN_YELLOW_RED.sample(1.0)

    def test_needs_two_stops(self):
        with pytest.raises(VisualizationError):
            ColorScale("x", [Color(0, 0, 0)])

    @given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_monotone_redness(self, t1, t2):
        # Along the GYR scale, hotter position means redder relative to
        # green: (r - g) grows monotonically, preserving the clear
        # fast-to-slow color ordering the paper requires.
        lo, hi = sorted((t1, t2))
        c_lo, c_hi = GREEN_YELLOW_RED.sample(lo), GREEN_YELLOW_RED.sample(hi)
        assert (c_hi.r - c_hi.g) >= (c_lo.r - c_lo.g) - 2  # rounding slack
        assert COLORBLIND_SCALE.sample(0.0) != COLORBLIND_SCALE.sample(1.0)


DISTRIBUTION_WITH_OUTLIER = [1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 100.0]


class TestCenteredScales:
    def test_mean_scale_highlights_outlier(self):
        scale = MeanCenteredScale(DISTRIBUTION_WITH_OUTLIER)
        # mean ~16.4 -> regular values land in the lower fifth of the scale,
        # the outlier clamps to 1 and gets a visually distinct color.
        assert scale.normalize(100.0) == 1.0
        assert scale.normalize(4.0) < 0.2

    def test_median_scale_groups_values(self):
        scale = MedianCenteredScale(DISTRIBUTION_WITH_OUTLIER)
        # median = 3 -> scale [0, 6]: the bulk spreads across the range.
        assert scale.normalize(3.0) == 0.5
        assert scale.normalize(100.0) == 1.0
        assert scale.normalize(1.0) == pytest.approx(1 / 6)

    def test_center_values(self):
        assert MeanCenteredScale([2, 4]).center == 3
        assert MedianCenteredScale([1, 2, 100]).center == 2

    def test_zero_center(self):
        scale = MedianCenteredScale([0.0, 0.0])
        assert scale.normalize(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(VisualizationError):
            MeanCenteredScale([-1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(VisualizationError):
            MeanCenteredScale([])


class TestHistogramScale:
    def test_distinct_values_spread_evenly(self):
        scale = HistogramScale([1.0, 2.0, 1000.0])
        assert scale.normalize(1.0) == 0.0
        assert scale.normalize(2.0) == 0.5
        assert scale.normalize(1000.0) == 1.0

    def test_gap_independence(self):
        # The defining property: positions depend on rank, not distance.
        near = HistogramScale([1.0, 2.0, 3.0])
        far = HistogramScale([1.0, 2.0, 3000.0])
        assert near.normalize(2.0) == far.normalize(2.0) == 0.5

    def test_repeated_values_share_bucket(self):
        scale = HistogramScale([5.0, 5.0, 7.0])
        assert scale.normalize(5.0) == 0.0
        assert scale.normalize(7.0) == 1.0

    def test_single_value(self):
        assert HistogramScale([42.0]).normalize(42.0) == 0.0

    def test_max_buckets_binning(self):
        values = [float(i) for i in range(1000)]
        scale = HistogramScale(values, max_buckets=10)
        assert len(scale.buckets) == 10
        assert scale.normalize(0.0) == 0.0
        assert scale.normalize(999.0) == 1.0

    def test_unseen_value_clamped(self):
        scale = HistogramScale([1.0, 2.0])
        assert scale.normalize(-5.0) == 0.0
        assert scale.normalize(99.0) == 1.0


class TestInterpolationScales:
    def test_linear(self):
        scale = LinearScale([0.0, 10.0])
        assert scale.normalize(5.0) == 0.5

    def test_linear_constant(self):
        assert LinearScale([3.0, 3.0]).normalize(3.0) == 0.0

    def test_exponential_compresses_large_values(self):
        scale = ExponentialScale([1.0, 10.0, 100.0])
        assert scale.normalize(10.0) == pytest.approx(0.5)

    def test_exponential_needs_positive(self):
        with pytest.raises(VisualizationError):
            ExponentialScale([0.0, 0.0])


class TestMakeScaling:
    @pytest.mark.parametrize("name", ["mean", "median", "histogram", "linear", "exponential"])
    def test_by_name(self, name):
        scale = make_scaling(name, [1.0, 2.0, 3.0])
        assert scale.method.value == name

    def test_unknown(self):
        with pytest.raises(VisualizationError):
            make_scaling("rainbow", [1.0])

    @given(
        st.sampled_from(["mean", "median", "histogram", "linear"]),
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_normalize_always_in_unit_interval(self, method, values):
        scale = make_scaling(method, values)
        for v in values:
            assert 0.0 <= scale.normalize(v) <= 1.0

    @given(
        st.sampled_from(["mean", "median", "histogram", "linear", "exponential"]),
        st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=2, max_size=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_normalization_is_monotone(self, method, values):
        scale = make_scaling(method, values)
        ordered = sorted(values)
        normalized = [scale.normalize(v) for v in ordered]
        assert all(a <= b + 1e-12 for a, b in zip(normalized, normalized[1:]))


class TestHeatmap:
    def test_assignments(self):
        hm = Heatmap({"a": 1.0, "b": 2.0, "c": 3.0}, method="median")
        colors = hm.assignments()
        assert set(colors) == {"a", "b", "c"}

    def test_outlier_gets_red_under_mean(self):
        hm = Heatmap(dict(enumerate(DISTRIBUTION_WITH_OUTLIER)), method="mean")
        outlier_color = hm.color(6)
        assert outlier_color.r > outlier_color.g  # red end

    def test_method_switch(self):
        hm = Heatmap({"a": 1.0, "b": 2.0}, method="mean")
        hm2 = hm.with_method("histogram")
        assert hm2.method is ScalingMethod.HISTOGRAM
        assert hm.method is ScalingMethod.MEAN

    def test_colorblind_swap(self):
        hm = Heatmap({"a": 1.0, "b": 2.0}).with_colors(COLORBLIND_SCALE)
        assert hm.colors is COLORBLIND_SCALE

    def test_legend(self):
        hm = Heatmap({"a": 0.0, "b": 10.0}, method="linear")
        legend = hm.legend(3)
        assert len(legend) == 3
        assert legend[0][0] == 0.0
        assert legend[-1][0] == 10.0

    def test_histogram_separates_more_colors(self):
        # On a clustered distribution the histogram scale assigns at least
        # as many distinct colors as the mean-centered scale (Fig. 2's
        # "clearly highlighting the distribution" behaviour).
        values = dict(enumerate([1.0, 1.1, 1.2, 1.3, 500.0]))
        mean_hm = Heatmap(values, method="mean")
        hist_hm = Heatmap(values, method="histogram")
        assert hist_hm.distinct_colors() >= mean_hm.distinct_colors()

    def test_empty_rejected(self):
        with pytest.raises(VisualizationError):
            Heatmap({})


class TestZeroCenterFallback:
    """Regression tests for the zero-center bug: with ``center == 0``
    (e.g. the median of a movement heatmap where most edges move
    nothing), ``value / (2 * center)`` used to clamp *every* value to
    position 0.0, so the only hot spots rendered as the coolest color —
    inverting the Section IV-C intent.  The scale must fall back to
    max-based linear interpolation instead."""

    def test_outliers_still_saturate_when_median_is_zero(self):
        scale = MedianCenteredScale([0.0, 0.0, 0.0, 5.0, 10.0])
        assert scale.center == 0
        assert scale.normalize(10.0) == 1.0  # the hottest edge is red
        assert scale.normalize(5.0) == 0.5
        assert scale.normalize(0.0) == 0.0

    def test_domain_matches_the_fallback_scale(self):
        scale = MedianCenteredScale([0.0, 0.0, 0.0, 5.0, 10.0])
        assert scale.domain() == (0.0, 10.0)
        # Legend ticks stay consistent with normalize().
        ticks = scale.ticks(3)
        assert ticks[0] == (0.0, 0.0)
        assert ticks[-1] == (10.0, 1.0)

    def test_all_zero_values_stay_flat(self):
        scale = MedianCenteredScale([0.0, 0.0, 0.0])
        assert scale.normalize(0.0) == 0.0
        assert scale.normalize(123.0) == 0.0  # nothing observed to rank
        assert scale.domain() == (0.0, 0.0)

    def test_mean_scale_gets_the_same_fallback(self):
        scale = MeanCenteredScale([0.0, 0.0, 0.0, 0.0])
        assert scale.center == 0
        assert scale.normalize(1.0) == 0.0
        assert scale.domain() == (0.0, 0.0)

    def test_heatmap_with_zero_median_highlights_hot_edges(self):
        hm = Heatmap(
            {"cold1": 0.0, "cold2": 0.0, "cold3": 0.0, "hot": 8.0},
            method="median",
        )
        hot = hm.color("hot")
        cold = hm.color("cold1")
        assert hot.r > hot.g  # warm end of the scale
        assert cold.g > cold.r  # cool end
