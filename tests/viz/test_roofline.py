"""Tests for the roofline view of tuning trajectories."""

import pytest

from repro.errors import VisualizationError
from repro.viz import MachineModel, render_roofline


def trajectory():
    step = [{"transform": "change_strides", "descriptor": ["pt", 0],
             "detail": "pt dim 0"}]
    return [
        {"sequence": [], "round": 0, "moved_bytes": 28672, "ops": 49152.0},
        {"sequence": step, "round": 1, "moved_bytes": 3584, "ops": 49152.0},
        {"sequence": step * 2, "round": 2, "moved_bytes": 8192,
         "ops": 49152.0},
    ]


class TestMachineModel:
    def test_balance(self):
        machine = MachineModel(peak_ops=64e9, bandwidth=32e9)
        assert machine.balance == 2.0

    def test_attainable_is_min_of_ceilings(self):
        machine = MachineModel(peak_ops=100.0, bandwidth=10.0)
        assert machine.attainable(1.0) == 10.0  # bandwidth-bound
        assert machine.attainable(1000.0) == 100.0  # compute-bound

    def test_rejects_nonpositive(self):
        with pytest.raises(VisualizationError):
            MachineModel(peak_ops=0)
        with pytest.raises(VisualizationError):
            MachineModel(bandwidth=-1)


class TestRender:
    def test_deterministic(self):
        assert render_roofline(trajectory()) == render_roofline(trajectory())

    def test_plots_every_scored_candidate(self):
        svg = render_roofline(trajectory())
        assert svg.count("<ellipse") == 3
        assert "machine balance" in svg
        assert svg.startswith("<svg ")

    def test_unscored_entries_skipped(self):
        traj = trajectory() + [{"sequence": [], "round": 3}]
        assert render_roofline(traj).count("<ellipse") == 3

    def test_best_and_baseline_highlighted(self):
        svg = render_roofline(trajectory())
        assert "#b06048" in svg  # best marker + trajectory path
        assert "#222222" in svg  # baseline marker

    def test_intensity_in_tooltips(self):
        svg = render_roofline(trajectory())
        # 49152 ops / 3584 bytes ~= 13.71 ops/B for the best candidate.
        assert "13.71 ops/B" in svg

    def test_empty_trajectory_rejected(self):
        with pytest.raises(VisualizationError):
            render_roofline([])
        with pytest.raises(VisualizationError):
            render_roofline([{"sequence": [], "round": 0}])

    def test_custom_machine_label(self):
        svg = render_roofline(
            trajectory(),
            machine=MachineModel(1e12, 1e11, label="accelerator"),
        )
        assert "accelerator" in svg
        assert "balance 10" in svg

    def test_real_search_trajectory(self):
        from repro.apps import cloudsc
        from repro.tuning import TuningSearch

        result = TuningSearch(
            cloudsc.build_sdfg(), cloudsc.LOCAL_VIEW_SIZES,
            beam=2, depth=1, budget=20,
            capacity_lines=cloudsc.CACHE["capacity_lines"],
        ).run()
        svg = render_roofline(result.trajectory, title="cloudsc")
        assert svg.count("<ellipse") == len(result.trajectory)
