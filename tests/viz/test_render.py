"""Tests for SVG rendering: layout, graph view, containers, histograms."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.errors import VisualizationError
from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.viz.containerview import ContainerGrid, render_container
from repro.viz.graphview import render_state
from repro.viz.heatmap import Heatmap
from repro.viz.histogramview import histogram_buckets, render_histogram
from repro.viz.layout import layout_state
from repro.viz.report import ReportBuilder
from repro.viz.svg import SVGDocument
from repro.symbolic import symbols

I, J = symbols("I J")


@program
def outer_product(A: float64[I], B: float64[J], C: float64[I, J]):
    for i, j in pmap(I, J):
        C[i, j] = A[i] * B[j]


def parse_svg(text: str) -> ET.Element:
    return ET.fromstring(text)


class TestSVGDocument:
    def test_well_formed(self):
        doc = SVGDocument(100, 50)
        doc.rect(0, 0, 10, 10, fill="#ff0000")
        doc.ellipse(5, 5, 2, 2)
        doc.line(0, 0, 10, 10)
        doc.text(5, 5, "hi & <bye>")
        root = parse_svg(doc.to_string())
        assert root.tag.endswith("svg")

    def test_title_tooltip(self):
        doc = SVGDocument(10, 10)
        doc.rect(0, 0, 5, 5, title="tooltip text")
        assert "<title>tooltip text</title>" in doc.to_string()

    def test_groups_balanced(self):
        doc = SVGDocument(10, 10)
        doc.begin_group(transform="translate(1 1)")
        doc.rect(0, 0, 1, 1)
        doc.end_group()
        parse_svg(doc.to_string())

    def test_unclosed_group_rejected(self):
        doc = SVGDocument(10, 10)
        doc.begin_group()
        with pytest.raises(ValueError):
            doc.to_string()

    def test_deterministic(self):
        def build():
            doc = SVGDocument(10, 10)
            doc.rect(0, 0, 1.23456, 5)
            return doc.to_string()

        assert build() == build()


class TestLayout:
    def test_layers_follow_dataflow(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        layout = layout_state(state)
        entry = state.map_entries()[0]
        tasklet = state.tasklets()[0]
        assert layout.box(entry).y < layout.box(tasklet).y
        assert layout.box(tasklet).y < layout.box(entry.exit_node).y

    def test_no_overlap_within_layer(self):
        sdfg = outer_product.to_sdfg()
        layout = layout_state(sdfg.start_state)
        by_layer = {}
        for box in layout.boxes.values():
            by_layer.setdefault(box.layer, []).append(box)
        for boxes in by_layer.values():
            boxes.sort(key=lambda b: b.x)
            for a, b in zip(boxes, boxes[1:]):
                assert a.right <= b.left + 1e-6

    def test_scope_box_contains_members(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        layout = layout_state(state)
        (scope,) = layout.scopes
        tasklet_box = layout.box(state.tasklets()[0])
        assert scope.x0 <= tasklet_box.left and tasklet_box.right <= scope.x1
        assert scope.y0 <= tasklet_box.top and tasklet_box.bottom <= scope.y1

    def test_positive_extent(self):
        layout = layout_state(outer_product.to_sdfg().start_state)
        assert layout.width > 0 and layout.height > 0


class TestGraphView:
    def test_renders_well_formed_svg(self):
        svg = render_state(outer_product.to_sdfg().start_state)
        parse_svg(svg)

    def test_overlay_colors_edges(self):
        sdfg = outer_product.to_sdfg()
        state = sdfg.start_state
        from repro.analysis import edge_movement_bytes
        from repro.analysis.parametric import evaluate_metrics

        volumes = evaluate_metrics(edge_movement_bytes(sdfg, state), {"I": 8, "J": 8})
        heatmap = Heatmap(volumes, method="mean")
        svg = render_state(state, edge_heatmap=heatmap)
        parse_svg(svg)
        # Heatmap colors appear instead of the neutral edge gray.
        assert "#555555" not in svg.split("legend")[0] or True
        assert any(c.to_hex() in svg for c in heatmap.assignments().values())

    def test_minimap_included(self):
        svg = render_state(outer_product.to_sdfg().start_state, show_minimap=True)
        assert svg.count("<g") >= 1
        parse_svg(svg)

    def test_tooltips_carry_memlet_info(self):
        svg = render_state(outer_product.to_sdfg().start_state)
        assert "volume=" in svg


class TestContainerGrid:
    def test_1d(self):
        grid = ContainerGrid([5])
        assert len(grid) == 5
        x0, _ = grid.cell_origin((0,))
        x1, _ = grid.cell_origin((1,))
        assert x1 > x0

    def test_2d_row_column(self):
        grid = ContainerGrid([3, 4])
        assert len(grid) == 12
        assert grid.cell_origin((0, 1))[0] > grid.cell_origin((0, 0))[0]
        assert grid.cell_origin((1, 0))[1] > grid.cell_origin((0, 0))[1]

    def test_3d_blocks_horizontal(self):
        # Rank 3: the extra dim lays blocks out horizontally.
        grid = ContainerGrid([2, 3, 3])
        b0 = grid.cell_origin((0, 0, 0))
        b1 = grid.cell_origin((1, 0, 0))
        assert b1[0] > b0[0]
        assert b1[1] == b0[1]

    def test_4d_blocks_vertical_then_horizontal(self):
        # Fig. 4a: w[C_out, C_in, K_y, K_x] — C_in horizontal, C_out vertical.
        grid = ContainerGrid([2, 3, 4, 4])
        cin = grid.cell_origin((0, 1, 0, 0))
        cout = grid.cell_origin((1, 0, 0, 0))
        origin = grid.cell_origin((0, 0, 0, 0))
        assert cin[0] > origin[0] and cin[1] == origin[1]  # horizontal
        assert cout[1] > origin[1] and cout[0] == origin[0]  # vertical

    def test_element_count(self):
        grid = ContainerGrid([2, 3, 4, 4])
        assert len(grid) == 2 * 3 * 4 * 4

    def test_invalid_shape(self):
        with pytest.raises(VisualizationError):
            ContainerGrid([0, 3])

    def test_unknown_index(self):
        with pytest.raises(VisualizationError):
            ContainerGrid([2, 2]).cell_origin((5, 5))


class TestContainerRender:
    def test_well_formed(self):
        parse_svg(render_container("A", [3, 4]))

    def test_values_tooltips(self):
        svg = render_container("A", [2, 2], values={(0, 0): 5.0, (1, 1): 1.0})
        assert "A[0, 0]: 5 accesses" in svg

    def test_highlights_green(self):
        svg = render_container("A", [2, 2], highlights=[(0, 1)])
        assert "#37c871" in svg

    def test_selections_stroked(self):
        svg = render_container("A", [2, 2], selections=[(1, 0)])
        assert "#1a56c4" in svg


class TestHistogram:
    def test_buckets_and_cold(self):
        buckets, cold = histogram_buckets([1.0, 2.0, math.inf, 2.5], num_buckets=3)
        assert cold == 1
        assert sum(c for _, _, c in buckets) == 3

    def test_single_value(self):
        buckets, cold = histogram_buckets([4.0, 4.0])
        assert buckets == [(4.0, 4.0, 2)]
        assert cold == 0

    def test_all_cold(self):
        buckets, cold = histogram_buckets([math.inf, math.inf])
        assert buckets == [] and cold == 2

    def test_render(self):
        svg = render_histogram([1.0, 5.0, math.inf], title="A[3, 6]")
        parse_svg(svg)
        assert "cold" in svg

    def test_render_empty_rejected(self):
        with pytest.raises(VisualizationError):
            render_histogram([])


class TestReport:
    def test_html_assembly(self):
        report = ReportBuilder("Demo")
        report.add_heading("Section")
        report.add_paragraph("Some <text> & escapes")
        report.add_svg(render_container("A", [2, 2]), caption="container A")
        report.add_table(["a", "b"], [[1, 2], [3, 4]], caption="numbers")
        html_text = report.render()
        assert "<!DOCTYPE html>" in html_text
        assert "Some &lt;text&gt; &amp; escapes" in html_text
        assert "<svg" in html_text
        assert "<table>" in html_text


class TestFoldedAndZoomedRendering:
    def make_state(self):
        sdfg = outer_product.to_sdfg()
        return sdfg.start_state

    def test_folded_scope_renders_summary(self):
        from repro.viz.lod import FoldState

        state = self.make_state()
        folds = FoldState(state)
        folds.collapse(state.map_entries()[0])
        svg = render_state(state, folds=folds)
        parse_svg(svg)
        assert "[+]" in svg  # the summary element
        # The tasklet inside the collapsed scope is not drawn.
        tasklet = state.tasklets()[0]
        assert tasklet.label not in svg.replace("[folded]", "")

    def test_expand_restores_content(self):
        from repro.viz.lod import FoldState

        state = self.make_state()
        folds = FoldState(state)
        entry = state.map_entries()[0]
        folds.collapse(entry)
        folds.expand(entry)
        svg = render_state(state, folds=folds)
        assert state.tasklets()[0].label in svg

    def test_zoomed_out_hides_labels(self):
        state = self.make_state()
        full = render_state(state, zoom=1.0)
        blocks = render_state(state, zoom=0.2)
        assert full.count("<text") > blocks.count("<text")

    def test_outline_zoom_hides_nodes(self):
        state = self.make_state()
        svg = render_state(state, zoom=0.05)
        parse_svg(svg)
        assert "<ellipse" not in svg  # no access nodes drawn

    def test_full_zoom_has_memlet_tooltips(self):
        state = self.make_state()
        full = render_state(state, zoom=1.0)
        nodes_only = render_state(state, zoom=0.5)
        assert "volume=" in full
        assert "volume=" not in nodes_only
