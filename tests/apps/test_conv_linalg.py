"""Tests for the convolution and linear-algebra figure kernels."""

import numpy as np
import pytest

from repro.apps import conv as C
from repro.apps import linalg as L
from repro.codegen import call_sdfg
from repro.simulation import simulate_state


class TestConv:
    def test_codegen_matches_reference(self):
        rng = np.random.default_rng(3)
        inp = rng.random((3, 9, 9))
        w = rng.random((2, 3, 4, 4))
        out = np.zeros((2, 6, 6))
        call_sdfg(C.build_conv(), inp, w, out)
        np.testing.assert_allclose(out, C.reference_conv(inp, w))

    def test_fig4b_access_distribution(self):
        """Fig. 4b: 3-channel 9×9 → 2-channel 6×6 (4×4 kernel).

        Interior input elements are touched by all overlapping windows
        (up to 4×4 per output channel), borders by fewer — the
        distribution the flattened heatmap shows.
        """
        result = simulate_state(C.build_conv(), C.FIG4_SIZES)
        counts = result.access_counts("inp")
        cout = C.FIG4_SIZES["Cout"]
        # Corner touched by exactly one window per output channel.
        assert counts[(0, 0, 0)] == cout
        # A fully-interior element is covered by 16 windows per channel.
        assert counts[(0, 4, 4)] == 16 * cout
        # Every weight is used once per output position.
        wcounts = result.access_counts("w")
        assert set(wcounts.values()) == {6 * 6}

    def test_output_write_counts(self):
        result = simulate_state(C.build_conv(), C.FIG4_SIZES)
        from repro.simulation import AccessKind

        writes = result.access_counts("out", AccessKind.WRITE)
        # Each output element accumulates Cin*KY*KX contributions.
        s = C.FIG4_SIZES
        assert set(writes.values()) == {s["Cin"] * s["KY"] * s["KX"]}


class TestLinalg:
    def test_outer_product_codegen(self):
        rng = np.random.default_rng(5)
        a, b = rng.random(3), rng.random(4)
        c = np.zeros((3, 4))
        call_sdfg(L.build_outer_product(), a, b, c)
        np.testing.assert_allclose(c, L.reference_outer(a, b))

    def test_matmul_codegen(self):
        rng = np.random.default_rng(6)
        a = rng.random((9, 10)).astype(np.float32)
        b = rng.random((10, 15)).astype(np.float32)
        c = np.zeros((9, 15), dtype=np.float32)
        call_sdfg(L.build_matmul(), a, b, c)
        np.testing.assert_allclose(c, L.reference_matmul(a, b), rtol=1e-5)

    def test_fig5_matmul_layouts(self):
        """Fig. 5a: A and C row-major, B column-major, 4-byte elements."""
        sdfg = L.build_fig5_matmul()
        env = {"I": 9, "K": 10, "J": 15}
        assert sdfg.arrays["A"].is_c_contiguous()
        assert sdfg.arrays["C"].is_c_contiguous()
        b = sdfg.arrays["B"]
        assert not b.is_c_contiguous()
        assert b.strides[0].evaluate(env) == 1
        assert b.dtype.itemsize == 4

    def test_fig5_cache_line_reveals_layouts(self):
        """Selecting elements with the 64-byte line overlay shows A's
        neighbors along rows and B's along columns (Fig. 5a)."""
        from repro.simulation import MemoryModel

        sdfg = L.build_fig5_matmul()
        env = {"I": 9, "K": 10, "J": 15}
        memory = MemoryModel(sdfg, env, line_size=64)
        a_neighbors = memory.layout("A").neighbors_in_line((0, 0), 64)
        # Row-major A: the whole 10-wide row shares the line, and (since a
        # 40-byte row underfills the 64-byte line) the line wraps into the
        # start of row 1 — the wrap-around phenomenon of Fig. 8c.
        assert [idx for idx in a_neighbors if idx[0] == 0] == [
            (0, c) for c in range(10)
        ]
        assert any(idx[0] == 1 for idx in a_neighbors)
        # Column-major B (line-aligned base): the line of B[0, 1] holds all
        # of column 0 plus the first rows of column 1 — grouping runs down
        # the columns, the transpose of A's row grouping.
        b_neighbors = memory.layout("B").neighbors_in_line((0, 1), 64)
        assert [idx for idx in b_neighbors if idx[1] == 0] == [
            (r, 0) for r in range(10)
        ]
        assert all(idx[1] in (0, 1) for idx in b_neighbors)
