"""Tests for the horizontal-diffusion case study."""

import numpy as np
import pytest

from repro.apps import hdiff as H
from repro.codegen import call_sdfg, interpret_sdfg
from repro.simulation import CacheModel, MemoryModel, simulate_state
from repro.simulation.movement import container_physical_movement


@pytest.fixture(scope="module")
def small_inputs():
    return H.initialize(12, 10, 4)


class TestNumpyVariants:
    def test_npbench_best_matches_baseline(self, small_inputs):
        in_field, out_field, coeff = small_inputs
        ref, out = out_field.copy(), out_field.copy()
        H.hdiff_numpy_baseline(in_field, ref, coeff)
        H.hdiff_npbench_best(in_field, out, coeff)
        np.testing.assert_allclose(out, ref)

    def test_hand_tuned_matches_baseline(self, small_inputs):
        in_field, out_field, coeff = small_inputs
        ref = out_field.copy()
        H.hdiff_numpy_baseline(in_field, ref, coeff)
        # The tuned program stores its fields K-major.
        out_km = H.to_kmajor(np.zeros_like(ref))
        H.hdiff_hand_tuned(H.to_kmajor(in_field), out_km, H.to_kmajor(coeff))
        np.testing.assert_allclose(H.from_kmajor(out_km), ref)

    def test_kmajor_round_trip(self, small_inputs):
        in_field, _, _ = small_inputs
        km = H.to_kmajor(in_field)
        assert km.flags.c_contiguous
        assert km.shape == (in_field.shape[2], in_field.shape[0], in_field.shape[1])
        np.testing.assert_array_equal(H.from_kmajor(km), in_field)

    def test_hand_tuned_workspace_reused(self, small_inputs):
        in_field, out_field, coeff = small_inputs
        out_km = H.to_kmajor(out_field.copy())
        H.hdiff_hand_tuned(H.to_kmajor(in_field), out_km, H.to_kmajor(coeff))
        ws_count = len(H._WORKSPACES)
        H.hdiff_hand_tuned(H.to_kmajor(in_field), out_km, H.to_kmajor(coeff))
        assert len(H._WORKSPACES) == ws_count

    def test_workspace_rows_are_padded(self):
        ws = H._HandTunedWorkspace(6, 10)
        # 10-wide rows pad to 16 elements: line-aligned row starts.
        assert ws.lap.base.shape[1] % 8 == 0
        assert ws.flx.base.shape[1] % 8 == 0


class TestSDFG:
    def test_structure(self):
        sdfg = H.build_sdfg()
        sdfg.validate()
        state = sdfg.start_state
        # One fused 3-D loop, as the paper presents it.
        assert len(state.map_entries()) == 1
        assert state.map_entries()[0].map.params == ["i", "j", "k"]

    def test_codegen_matches_numpy(self, small_inputs):
        in_field, out_field, coeff = small_inputs
        ref = out_field.copy()
        H.hdiff_numpy_baseline(in_field, ref, coeff)
        out = np.zeros_like(ref)
        call_sdfg(H.build_sdfg(), in_field, coeff, out)
        np.testing.assert_allclose(out, ref)

    def test_interpreter_matches_numpy(self):
        in_field, out_field, coeff = H.initialize(4, 4, 2)
        ref = out_field.copy()
        H.hdiff_numpy_baseline(in_field, ref, coeff)
        out = np.zeros_like(ref)
        interpret_sdfg(
            H.build_sdfg(), {"in_field": in_field, "coeff": coeff, "out_field": out},
            {"I": 4, "J": 4, "K": 2},
        )
        np.testing.assert_allclose(out, ref)


class TestTuningSteps:
    def test_reshape_changes_layout(self):
        sdfg = H.build_sdfg()
        H.apply_reshape(sdfg)
        assert [str(s) for s in sdfg.arrays["in_field"].shape] == ["K", "4 + I", "4 + J"]
        sdfg.validate()

    def test_reshaped_sdfg_still_correct(self):
        in_field, out_field, coeff = H.initialize(6, 6, 3)
        ref = out_field.copy()
        H.hdiff_numpy_baseline(in_field, ref, coeff)
        sdfg = H.build_sdfg()
        H.apply_reshape(sdfg)
        out_t = np.zeros((3, 6, 6))
        call_sdfg(
            sdfg,
            np.ascontiguousarray(in_field.transpose(2, 0, 1)),
            np.ascontiguousarray(coeff.transpose(2, 0, 1)),
            out_t,
        )
        np.testing.assert_allclose(out_t.transpose(1, 2, 0), ref)

    def test_reorder_makes_k_outermost(self):
        sdfg = H.build_sdfg()
        H.apply_reorder(sdfg)
        assert sdfg.start_state.map_entries()[0].map.params == ["k", "i", "j"]

    def test_padding_aligns_rows(self):
        sdfg = H.build_sdfg()
        H.apply_reshape(sdfg)
        H.apply_padding(sdfg, line_bytes=64)
        desc = sdfg.arrays["in_field"]
        row_stride = desc.strides[1].evaluate(H.LOCAL_VIEW_SIZES)
        assert row_stride % 8 == 0  # 8 doubles per 64-byte line

    def test_paper_sequence_reduces_in_field_movement(self):
        """The Fig. 7 narrative: reshape almost halves in_field's physical
        movement, and misses never increase across the tuning steps."""
        env = H.LOCAL_VIEW_SIZES
        # The capacity threshold is scaled down along with the 1/32-scale
        # simulation sizes (paper Section V-F: the user adjusts it so the
        # modeled cache matches the scaled working set).
        model = CacheModel(line_size=64, capacity_lines=4)

        def measure(*steps):
            sdfg = H.build_sdfg()
            for step in steps:
                step(sdfg)
            result = simulate_state(sdfg, env)
            memory = MemoryModel(sdfg, env, line_size=64)
            return container_physical_movement(result.events, memory, model)[
                "in_field"
            ]

        baseline = measure()
        reshaped = measure(H.apply_reshape)
        reordered = measure(H.apply_reshape, H.apply_reorder)
        padded = measure(H.apply_reshape, H.apply_reorder, H.apply_padding)
        assert reshaped < baseline
        # Paper: "almost halves the amount of data being requested".
        assert reshaped <= 0.55 * baseline
        assert reordered <= reshaped
        assert padded <= reordered
