"""Tests for the BERT encoder case study."""

import numpy as np
import pytest

from repro.analysis import total_movement_bytes
from repro.apps import bert as B


@pytest.fixture(scope="module")
def weights():
    return B.initialize(B.ANALYSIS_SIZES)


@pytest.fixture(scope="module")
def baseline_output(weights):
    return B.encoder_baseline(weights)


class TestNumpyVariants:
    def test_stage1_matches_baseline(self, weights, baseline_output):
        np.testing.assert_allclose(
            B.encoder_fused_stage1(weights), baseline_output, rtol=1e-10
        )

    def test_stage2_matches_baseline(self, weights, baseline_output):
        np.testing.assert_allclose(
            B.encoder_fused_stage2(weights), baseline_output, rtol=1e-10
        )

    def test_output_shape(self, weights, baseline_output):
        sizes = weights.sizes
        assert baseline_output.shape == (sizes["B"], sizes["SM"], sizes["EMB"])

    def test_output_is_layernormed(self, baseline_output):
        np.testing.assert_allclose(
            np.mean(baseline_output, axis=-1), 0.0, atol=1e-10
        )


class TestSDFG:
    def test_structure(self):
        sdfg = B.build_sdfg()
        sdfg.validate()
        state = sdfg.start_state
        # One map per operation: 29 operations in the unfused encoder.
        assert len(state.map_entries()) == 29

    def test_interpreter_matches_numpy(self):
        # Tiny sizes: the interpreter executes every iteration in Python.
        sizes = {"B": 1, "H": 2, "SM": 4, "EMB": 8, "FF": 16, "P": 4}
        w = B.initialize(sizes)
        ref = B.encoder_baseline(w)
        from repro.codegen import interpret_sdfg

        out = np.zeros_like(ref)
        arrays = {
            "x": w.x, "wq": w.wq, "wk": w.wk, "wv": w.wv,
            "bq": w.bq, "bk": w.bk, "bv": w.bv,
            "wo": w.wo, "bo": w.bo,
            "w1": w.w1, "b1": w.b1, "w2": w.w2, "b2": w.b2,
            "gamma1": w.gamma1, "beta1": w.beta1,
            "gamma2": w.gamma2, "beta2": w.beta2,
            "out": out,
        }
        interpret_sdfg(B.build_sdfg(), arrays, sizes)
        np.testing.assert_allclose(out, ref, rtol=1e-8)


class TestFusionStages:
    def test_stage1_finds_the_two_red_chains(self):
        """Paper Fig. 6 left: the mean-scaled movement heatmap highlights
        two series of red edges — the attention softmax chain and the GELU
        chain."""
        sdfg = B.build_sdfg()
        candidates = B.fusion_candidates_by_movement(sdfg, B.PAPER_SIZES)
        names = {c.intermediate.data for c in candidates}
        assert "scaled" in names  # attention chain ([B, H, SM, SM])
        assert {"cube", "inner"} & names  # GELU chain ([B, SM, FF])
        # Small intermediates (bias adds over [B, SM, EMB]) are not hot.
        assert "projb" not in names
        assert "h2b" not in names

    def test_stage1_reduces_movement(self):
        env = B.PAPER_SIZES
        sdfg = B.build_sdfg()
        before = total_movement_bytes(sdfg, unique=True).evaluate(env)
        applied = B.apply_fusion_stage1(sdfg, env)
        after = total_movement_bytes(sdfg, unique=True).evaluate(env)
        assert applied >= 3
        assert after < before
        sdfg.validate()

    def test_stage2_reduces_further(self):
        env = B.PAPER_SIZES
        sdfg = B.build_sdfg()
        B.apply_fusion_stage1(sdfg, env)
        mid = total_movement_bytes(sdfg, unique=True).evaluate(env)
        applied = B.apply_fusion_stage2(sdfg)
        after = total_movement_bytes(sdfg, unique=True).evaluate(env)
        assert applied >= 1
        assert after < mid
        sdfg.validate()

    def test_map_count_shrinks(self):
        sdfg = B.build_sdfg()
        n0 = len(sdfg.start_state.map_entries())
        B.apply_fusion_stage1(sdfg, B.PAPER_SIZES)
        n1 = len(sdfg.start_state.map_entries())
        B.apply_fusion_stage2(sdfg)
        n2 = len(sdfg.start_state.map_entries())
        assert n0 > n1 > n2


class TestRuntimeOrdering:
    def test_fused_variants_not_slower(self, weights):
        """Each stage must not regress (Table I's relative ordering)."""
        import time

        def best_of(fn, repeats=3):
            fn(weights)  # warm up
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn(weights)
                times.append(time.perf_counter() - t0)
            return min(times)

        t_base = best_of(B.encoder_baseline)
        t_s1 = best_of(B.encoder_fused_stage1)
        t_s2 = best_of(B.encoder_fused_stage2)
        # Allow jitter: stage1 within 20% of baseline, stage2 clearly fastest.
        assert t_s1 <= t_base * 1.2
        assert t_s2 <= t_base
