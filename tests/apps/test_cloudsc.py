"""Tests for the CLOUDSC vertical-loop case study."""

import numpy as np
import pytest

from repro.apps import cloudsc as C
from repro.tool import Session


def moved_bytes(sdfg) -> int:
    """Modeled physical movement at the local-view sizes and cache."""
    session = Session(sdfg)
    lv = session.local_view(
        C.LOCAL_VIEW_SIZES,
        line_size=C.CACHE["line_size"],
        capacity_lines=C.CACHE["capacity_lines"],
    )
    return sum(lv.physical_movement().values())


class TestStructure:
    def test_builds_and_validates(self):
        sdfg = C.build_sdfg()
        sdfg.validate()
        assert set(C.FIELDS) <= set(sdfg.arrays)
        state = sdfg.start_state
        labels = {e.map.label for e in state.map_entries()}
        assert labels == {"vert_loop", "block_map"}

    def test_fields_are_block_major(self):
        sdfg = C.build_sdfg()
        for name in C.FIELDS:
            desc = sdfg.arrays[name]
            assert [str(s) for s in desc.shape] == ["NBLOCKS", "KLEV"]
            # Baseline AoS-style layout: KLEV innermost (stride 1).
            assert str(desc.strides[-1]) == "1"

    def test_reference_numpy(self):
        pt, pq, plude, pfplsl = C.initialize(6, 5)
        C.cloudsc_numpy_reference(pt, pq, plude, pfplsl)
        expected = 0.5 * (pt[:, 1:] - pq[:, 1:]) + plude[:, :-1]
        np.testing.assert_allclose(pfplsl[:, 1:], expected)

    def test_initialize_deterministic(self):
        a = C.initialize(4, 3)
        b = C.initialize(4, 3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestOptimizations:
    def test_baseline_movement(self):
        assert moved_bytes(C.build_sdfg()) == 28672

    def test_change_strides_cuts_movement(self):
        """The AoS->SoA stride change (NBLOCKS innermost) must cut modeled
        movement by at least the acceptance bar of 20%."""
        sdfg = C.build_sdfg()
        baseline = moved_bytes(sdfg)
        report = C.apply_change_strides(sdfg)
        assert report.layout_only
        tuned = moved_bytes(sdfg)
        assert 1 - tuned / baseline >= 0.20
        for name in C.FIELDS:
            assert str(sdfg.arrays[name].strides[0]) == "1"

    def test_loop_interchange_cuts_movement(self):
        sdfg = C.build_sdfg()
        baseline = moved_bytes(sdfg)
        C.apply_loop_interchange(sdfg)
        sdfg.validate()
        assert 1 - moved_bytes(sdfg) / baseline >= 0.20

    def test_change_strides_preserves_logical_analyses(self):
        from repro.analysis.movement import total_movement_bytes
        from repro.analysis.opcount import program_ops

        sdfg = C.build_sdfg()
        env = {"NBLOCKS": 8, "KLEV": 4}
        ops = program_ops(sdfg).evaluate(env)
        logical = total_movement_bytes(sdfg).evaluate(env)
        C.apply_change_strides(sdfg)
        assert program_ops(sdfg).evaluate(env) == ops
        assert total_movement_bytes(sdfg).evaluate(env) == logical


class TestTuning:
    def test_tune_finds_reduction(self):
        """The acceptance scenario: `tune` on CLOUDSC finds a stride or
        schedule change cutting modeled movement by >= 20%."""
        session = Session(C.build_sdfg())
        result = session.tune(
            C.LOCAL_VIEW_SIZES,
            beam=4,
            depth=2,
            budget=60,
            line_size=C.CACHE["line_size"],
            capacity_lines=C.CACHE["capacity_lines"],
        )
        assert result.improvement >= 0.20
        assert result.best.sequence  # not the baseline
        assert result.pass_hits > 0


@pytest.mark.parametrize("fix", [C.apply_change_strides, C.apply_loop_interchange])
def test_optimized_access_pattern_unchanged(fix):
    """Both optimizations preserve per-container access counts."""
    from repro.simulation import simulate_state

    env = {"NBLOCKS": 4, "KLEV": 3}
    base = C.build_sdfg()
    ref = simulate_state(base, env)
    sdfg = C.build_sdfg()
    fix(sdfg)
    out = simulate_state(sdfg, env)
    for name in C.FIELDS:
        assert out.access_counts(name) == ref.access_counts(name)
