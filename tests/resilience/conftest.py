"""Shared fixtures: chaos isolation.

The CI resilience job runs this suite under a ``REPRO_CHAOS`` matrix.
Most tests here install their *own* spec (or none) and must not be
perturbed by the ambient one, so an autouse fixture disables the
environment spec around every test; the opt-in ``env_chaos`` fixture
hands the ambient spec to the availability tests that want it.
"""

import os

import pytest

from repro.resilience import chaos as chaos_mod


@pytest.fixture(autouse=True)
def _isolated_chaos():
    chaos_mod.install(None)
    yield
    chaos_mod.uninstall()


@pytest.fixture()
def env_chaos():
    """The ``REPRO_CHAOS`` spec string from the environment (or None)."""
    return os.environ.get("REPRO_CHAOS", "").strip() or None
