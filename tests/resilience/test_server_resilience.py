"""Resilience behaviour of the analysis service over real sockets.

Covers the four lifecycle layers end-to-end: admission control (429 +
``Retry-After``), request deadlines (504 / terminal stream events),
graceful drain (healthz flip, 503 shedding, in-flight completion), and
the ``stop()`` wedged-handler regression.  Chaos injection drives the
slow-evaluation scenarios deterministically.
"""

import asyncio
import http.client
import json
import threading
import time
import warnings

import pytest

from repro.apps.hdiff import hdiff_program
from repro.obs.metrics import MetricsRegistry
from repro.resilience import chaos as chaos_mod
from repro.resilience.deadline import DeadlineExceeded
from repro.serve.app import AnalysisServer, ServeShutdownWarning
from repro.serve.coalesce import Coalescer
from repro.serve.http import json_response
from repro.tool.session import Session


def make_server(**kwargs):
    return AnalysisServer(
        Session(hdiff_program), port=0, **kwargs
    ).start_background()


@pytest.fixture()
def server():
    srv = make_server()
    yield srv
    srv.stop()


def get(server, path, headers=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=timeout)
    try:
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def post_stream(server, path, payload, headers=None, timeout=60):
    """POST and read the close-delimited NDJSON stream to the end."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=timeout)
    try:
        conn.request(
            "POST",
            path,
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        resp = conn.getresponse()
        body = resp.read()
        if resp.status != 200:
            return resp.status, [json.loads(body)] if body else []
        events = [
            json.loads(line) for line in body.decode("utf-8").splitlines() if line
        ]
        return resp.status, events
    finally:
        conn.close()


def inject_blocking_route(server, path, release):
    """Add a GET route that answers only once *release* is set."""

    async def handler(conn, request):
        while not release.is_set():
            await asyncio.sleep(0.01)
        await conn.send(json_response({"ok": True}), keep_alive=False)
        return False

    server._routes[("GET", path)] = handler


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestAdmissionControl:
    def test_saturated_endpoint_sheds_429_with_retry_after(self):
        srv = make_server(admission_limits={"*": (1, 0)})
        release = threading.Event()
        try:
            inject_blocking_route(srv, "/v1/block", release)
            holder = threading.Thread(
                target=get, args=(srv, "/v1/block"), daemon=True
            )
            holder.start()
            assert wait_for(
                lambda: srv.admission.snapshot()
                .get("/v1/block", {})
                .get("active") == 1
            )
            status, headers, body = get(srv, "/v1/block")
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "saturated" in json.loads(body)["error"]
            counters = srv.metrics.to_dict()["counters"]
            assert counters["admission.v1.block.shed"] == 1
            assert srv.metrics.histogram("serve.shed_seconds").count == 1
        finally:
            release.set()
            holder.join(timeout=5)
            srv.stop()

    def test_control_plane_bypasses_admission(self):
        srv = make_server(admission_limits={"*": (1, 0)})
        release = threading.Event()
        try:
            inject_blocking_route(srv, "/v1/block", release)
            holder = threading.Thread(
                target=get, args=(srv, "/v1/block"), daemon=True
            )
            holder.start()
            assert wait_for(
                lambda: srv.admission.snapshot()
                .get("/v1/block", {})
                .get("active") == 1
            )
            # Saturation must not take down probes and metrics.
            assert get(srv, "/v1/healthz")[0] == 200
            assert get(srv, "/")[0] == 200
            assert get(srv, "/v1/metrics")[0] == 200
        finally:
            release.set()
            holder.join(timeout=5)
            srv.stop()

    def test_deadline_expires_while_queued_504(self):
        srv = make_server(admission_limits={"*": (1, 1)})
        release = threading.Event()
        try:
            inject_blocking_route(srv, "/v1/block", release)
            holder = threading.Thread(
                target=get, args=(srv, "/v1/block"), daemon=True
            )
            holder.start()
            assert wait_for(
                lambda: srv.admission.snapshot()
                .get("/v1/block", {})
                .get("active") == 1
            )
            status, _, body = get(
                srv, "/v1/block", headers={"X-Repro-Deadline-Ms": "150"}
            )
            assert status == 504
            assert "queued for admission" in json.loads(body)["error"]
            assert srv.metrics.counter("serve.deadline_exceeded").value == 1
        finally:
            release.set()
            holder.join(timeout=5)
            srv.stop()


class TestDeadlines:
    def test_bad_deadline_header_400(self, server):
        for value in ("nope", "0", "-5"):
            status, _, body = get(
                server, "/v1/local/view?I=4&J=4&K=2",
                headers={"X-Repro-Deadline-Ms": value},
            )
            assert status == 400
            assert "Deadline" in json.loads(body)["error"]

    def test_slow_evaluation_times_out_504(self, server):
        chaos_mod.install("eval.slow:kind=sleep:delay=0.5")
        status, _, body = get(
            server, "/v1/local/view?I=5&J=5&K=2",
            headers={"X-Repro-Deadline-Ms": "100"},
        )
        assert status == 504
        assert "deadline" in json.loads(body)["error"]
        counters = server.metrics.to_dict()["counters"]
        assert counters["serve.deadline_exceeded"] == 1
        assert counters["serve.coalesce.deadline_expired"] == 1

    def test_sweep_deadline_emits_terminal_error_event(self, server):
        chaos_mod.install("eval.slow:kind=sleep:delay=0.1")
        status, events = post_stream(
            server,
            "/v1/sweep",
            {
                "grid": {"I": [4, 5, 6, 7, 8, 9], "J": [4, 5], "K": [2]},
                "deadline_ms": 250,
            },
        )
        assert status == 200
        assert events[0]["event"] == "start"
        terminal = events[-1]
        assert terminal["event"] == "error"
        assert terminal["kind"] == "deadline"
        assert terminal["points_streamed"] < 12  # it really was cut short
        assert server.metrics.counter("serve.deadline_exceeded").value == 1


class TestStreamTerminalErrors:
    def test_sweep_producer_death_emits_error_record(self, server):
        def boom(*args, **kwargs):
            raise RuntimeError("producer thread died")

        server.session.sweep = boom
        status, events = post_stream(
            server, "/v1/sweep", {"grid": {"I": [4, 5], "J": [4], "K": [2]}}
        )
        assert status == 200
        terminal = events[-1]
        assert terminal["event"] == "error"
        assert terminal["kind"] == "RuntimeError"
        assert terminal["points_streamed"] == 0
        assert server.metrics.counter("serve.stream_errors").value == 1

    def test_tune_producer_death_emits_error_record(self, server):
        def boom(*args, **kwargs):
            raise RuntimeError("producer thread died")

        server.session.tune = boom
        status, events = post_stream(
            server, "/v1/tune", {"params": {"I": 8, "J": 8, "K": 2}}
        )
        assert status == 200
        terminal = events[-1]
        assert terminal["event"] == "error"
        assert terminal["kind"] == "RuntimeError"
        assert server.metrics.counter("serve.stream_errors").value == 1


class TestGracefulDrain:
    def test_drain_flips_healthz_and_sheds_new_work(self, server):
        assert get(server, "/v1/healthz")[0] == 200
        assert server.begin_drain()
        assert not server.begin_drain()  # idempotent
        status, _, body = get(server, "/v1/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "draining"
        # New work is refused with a retry hint...
        status, headers, _ = get(server, "/v1/local/view?I=4&J=4&K=2")
        assert status == 503
        assert headers["Retry-After"] == "1"
        # ...but the control plane keeps answering.
        assert get(server, "/")[0] == 200
        assert get(server, "/v1/metrics")[0] == 200

    def test_drain_completes_inflight_stream(self):
        srv = make_server()
        try:
            chaos_mod.install("eval.slow:kind=sleep:delay=0.05")
            result = {}

            def stream():
                result["events"] = post_stream(
                    srv,
                    "/v1/sweep",
                    {"grid": {"I": [4, 5, 6, 7], "J": [4, 5], "K": [2]}},
                )[1]

            client = threading.Thread(target=stream, daemon=True)
            client.start()
            assert wait_for(lambda: srv.drain.inflight == 1)
            srv.begin_drain()
            client.join(timeout=30)
            assert not client.is_alive()
            # The in-flight stream ran to its normal end event.
            assert result["events"][-1]["event"] == "end"
            assert result["events"][-1]["points"] == 8
            assert srv.drain.wait_idle(timeout=5)
        finally:
            srv.stop()

    def test_drain_and_stop_reports_clean_completion(self):
        srv = make_server()
        assert srv.drain_and_stop(timeout=2.0)
        assert srv.drain.phase == "stopped"


class TestStopWedgeRegression:
    def test_wedged_handler_surfaces_join_timeout(self):
        # A handler that swallows its cancellation forever used to make
        # stop() silently leave the loop thread alive while shutting the
        # worker pool down under it.  Now the failure is surfaced.
        srv = make_server()

        async def wedge(conn, request):
            while True:
                try:
                    await asyncio.sleep(3600)
                except asyncio.CancelledError:
                    continue  # deliberately ignores cancellation

        srv._routes[("GET", "/v1/wedge")] = wedge
        threading.Thread(
            target=get, args=(srv, "/v1/wedge"), kwargs={"timeout": 10},
            daemon=True,
        ).start()
        assert wait_for(lambda: srv.drain.inflight == 1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert srv.stop(join_timeout=0.3) is False
        assert any(
            issubclass(w.category, ServeShutdownWarning) for w in caught
        )
        assert srv.metrics.counter("serve.stop.join_timeouts").value == 1
        # The loop thread is leaked (daemon) by design; no further joins.


class TestCoalescerDeadlineVsWaiters:
    def test_expired_waiter_does_not_cancel_leaders_work(self):
        # Satellite regression: a deadline-expired joiner must drop only
        # its own waiter slot; the leader's evaluation keeps running and
        # completes for the remaining waiters.
        metrics = MetricsRegistry()
        coalescer = Coalescer(metrics)
        calls = []
        release = threading.Event()
        cancelled = []

        def compute(cancel):
            calls.append(1)
            release.wait(5)
            cancelled.append(cancel.cancelled)
            return "product"

        async def go():
            from repro.resilience.deadline import Deadline

            leader = asyncio.ensure_future(coalescer.fetch("k", compute))
            await asyncio.sleep(0.05)
            joiner = asyncio.ensure_future(
                coalescer.fetch("k", compute, Deadline.after(0.1))
            )
            with pytest.raises(DeadlineExceeded):
                await joiner
            release.set()
            return await leader

        assert asyncio.run(go()) == "product"
        assert len(calls) == 1  # the joiner never started its own compute
        assert cancelled == [False]  # the shared token never fired
        assert metrics.counter("serve.coalesce.deadline_expired").value == 1
        assert metrics.counter("serve.coalesce.cancelled").value == 0

    def test_sole_waiter_deadline_cancels_the_work(self):
        # Counter-case: when the expiring waiter is the LAST one, the
        # shared token must fire so the evaluation stops doing work
        # nobody will read.
        metrics = MetricsRegistry()
        coalescer = Coalescer(metrics)
        release = threading.Event()

        def compute(cancel):
            release.wait(5)
            return "product"

        async def go():
            from repro.resilience.deadline import Deadline

            with pytest.raises(DeadlineExceeded):
                await coalescer.fetch("k", compute, Deadline.after(0.05))
            release.set()

        asyncio.run(go())
        assert metrics.counter("serve.coalesce.deadline_expired").value == 1
        assert metrics.counter("serve.coalesce.cancelled").value == 1
        assert coalescer.inflight == 0


class TestAvailabilityUnderAmbientChaos:
    def test_interactive_requests_survive_env_chaos(self, env_chaos):
        # The CI resilience job re-runs this suite under a REPRO_CHAOS
        # matrix; whatever the ambient fault spec is (worker kills, disk
        # errors, slow evaluations), every interactive request must
        # still succeed — degraded, never broken.
        if env_chaos:
            chaos_mod.install(env_chaos)
        srv = make_server()
        try:
            for i in range(6):
                status, _, _ = get(srv, f"/v1/local/view?I={4 + i}&J=4&K=2")
                assert status == 200
            assert get(srv, "/v1/healthz")[0] == 200
        finally:
            srv.stop()
