"""CircuitBreaker state-machine tests with an injected clock."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        "dep",
        failure_threshold=3,
        reset_timeout=5.0,
        metrics=MetricsRegistry(),
        clock=clock,
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half_open"

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()  # probe verdict pending

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()

    def test_probe_failure_reopens_full_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("bad", failure_threshold=0)


class TestObservability:
    def test_snapshot_transitions(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert [t["state"] for t in snap["transitions"]] == [
            "closed", "open", "half_open", "closed",
        ]

    def test_metrics_exported(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        doc = breaker.metrics.to_dict()
        assert doc["states"]["breaker.dep.state"]["value"] == "open"
        assert doc["counters"]["breaker.dep.opened"] == 1
        assert doc["counters"]["breaker.dep.failures"] == 3
        clock.advance(5.0)
        breaker.allow()
        assert breaker.metrics.to_dict()["counters"]["breaker.dep.probes"] == 1
