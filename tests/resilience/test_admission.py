"""AdmissionController tests: shedding, queuing, and slot handoff."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience.admission import (
    AdmissionController,
    EndpointLimit,
    Overloaded,
)


def run(coro):
    return asyncio.run(coro)


def controller(limit=1, queue=1, metrics=None):
    return AdmissionController(
        limits={"/x": (limit, queue)}, metrics=metrics or MetricsRegistry()
    )


class TestAcquire:
    def test_immediate_grant_under_limit(self):
        async def scenario():
            ctl = controller(limit=2)
            await ctl.acquire("/x", "x")
            await ctl.acquire("/x", "x")
            assert ctl.snapshot()["/x"]["active"] == 2

        run(scenario())

    def test_shed_when_saturated_and_queue_full(self):
        async def scenario():
            ctl = controller(limit=1, queue=0)
            await ctl.acquire("/x", "x")
            with pytest.raises(Overloaded) as info:
                await ctl.acquire("/x", "x")
            assert info.value.retry_after >= 1

        run(scenario())

    def test_queued_waiter_granted_on_release_fifo(self):
        async def scenario():
            ctl = controller(limit=1, queue=2)
            await ctl.acquire("/x", "x")
            order = []

            async def waiter(tag):
                await ctl.acquire("/x", "x")
                order.append(tag)
                ctl.release("/x", "x")

            a = asyncio.ensure_future(waiter("a"))
            await asyncio.sleep(0)
            b = asyncio.ensure_future(waiter("b"))
            await asyncio.sleep(0)
            ctl.release("/x", "x")
            await asyncio.gather(a, b)
            assert order == ["a", "b"]

        run(scenario())

    def test_unknown_path_uses_default_limits(self):
        async def scenario():
            ctl = AdmissionController(
                limits={"*": (1, 0)}, metrics=MetricsRegistry()
            )
            await ctl.acquire("/anything", "any")
            with pytest.raises(Overloaded):
                await ctl.acquire("/anything", "any")

        run(scenario())


class TestCancellation:
    def test_cancelled_waiter_removed_from_queue(self):
        async def scenario():
            ctl = controller(limit=1, queue=2)
            await ctl.acquire("/x", "x")
            task = asyncio.ensure_future(ctl.acquire("/x", "x"))
            await asyncio.sleep(0)
            assert ctl.snapshot()["/x"]["queued"] == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert ctl.snapshot()["/x"]["queued"] == 0
            # Slot still held by the first request; release frees it.
            ctl.release("/x", "x")
            assert ctl.snapshot()["/x"]["active"] == 0

        run(scenario())

    def test_granted_then_cancelled_hands_slot_onward(self):
        # A waiter whose future was resolved by release() but which gets
        # cancelled before resuming must pass the slot to the next
        # waiter instead of leaking it.
        async def scenario():
            ctl = controller(limit=1, queue=2)
            await ctl.acquire("/x", "x")
            first = asyncio.ensure_future(ctl.acquire("/x", "x"))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(ctl.acquire("/x", "x"))
            await asyncio.sleep(0)
            ctl.release("/x", "x")  # grants `first` without resuming it
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            await second  # must have inherited the slot
            assert ctl.snapshot()["/x"]["active"] == 1
            ctl.release("/x", "x")
            assert ctl.snapshot()["/x"]["active"] == 0

        run(scenario())


class TestRetryAfterAndMetrics:
    def test_retry_after_scales_with_backlog_and_clamps(self):
        state = EndpointLimit(1, 10)
        state.ewma_seconds = 4.0
        state.active = 1
        assert state.retry_after() == 4
        state.ewma_seconds = 500.0
        assert state.retry_after() == 30  # clamped high
        state.ewma_seconds = 0.001
        assert state.retry_after() == 1  # clamped low

    def test_release_updates_ewma(self):
        async def scenario():
            ctl = controller(limit=1)
            await ctl.acquire("/x", "x")
            ctl.release("/x", "x", seconds=2.0)
            ewma = ctl.snapshot()["/x"]["ewma_seconds"]
            assert 0.1 < ewma < 2.0

        run(scenario())

    def test_shed_and_admit_counters(self):
        async def scenario():
            metrics = MetricsRegistry()
            ctl = controller(limit=1, queue=0, metrics=metrics)
            await ctl.acquire("/x", "x")
            with pytest.raises(Overloaded):
                await ctl.acquire("/x", "x")
            counters = metrics.to_dict()["counters"]
            assert counters["admission.x.admitted"] == 1
            assert counters["admission.x.shed"] == 1

        run(scenario())

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            EndpointLimit(0, 1)
        with pytest.raises(ValueError):
            EndpointLimit(1, -1)
