"""Chaos-driven disk-cache tests: transient faults open the breaker.

Permanent degradation (ENOSPC, unwritable directory, lock starvation)
is covered in tests/storage/test_fault_injection.py; here the injected
faults are *transient* (EIO) and the cache must respond with a breaker
cooldown and a later recovery probe, never with permanent shutdown.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.passes.store import _LRUBacking
from repro.resilience import chaos as chaos_mod
from repro.resilience.breaker import CircuitBreaker
from repro.storage.diskcache import DiskCache
from repro.storage.tiered import TieredBacking


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


def make_cache(tmp_path, clock, metrics=None, threshold=3):
    metrics = metrics or MetricsRegistry()
    breaker = CircuitBreaker(
        "disk", failure_threshold=threshold, reset_timeout=30.0,
        metrics=metrics, clock=clock,
    )
    return DiskCache(tmp_path / "cache", metrics=metrics, breaker=breaker)


class TestWriteChaos:
    def test_transient_write_errors_open_breaker_not_degrade(self, tmp_path, clock):
        metrics = MetricsRegistry()
        cache = make_cache(tmp_path, clock, metrics=metrics)
        chaos_mod.install("disk.write")  # EIO on every write
        for i in range(3):
            cache.put(("k", i), {"v": i})
        assert not cache.disabled  # transient: NOT permanent degradation
        assert cache.breaker.state == "open"
        assert metrics.counter("disk.io_errors").value == 3

    def test_open_breaker_skips_disk_until_probe_recovers(self, tmp_path, clock):
        metrics = MetricsRegistry()
        cache = make_cache(tmp_path, clock, metrics=metrics)
        chaos_mod.install("disk.write:times=3")
        for i in range(3):
            cache.put(("k", i), {"v": i})
        assert cache.breaker.state == "open"
        # While open, puts and gets are skipped without touching disk.
        cache.put(("k", 9), {"v": 9})
        assert cache.get(("k", 9)) is None
        assert metrics.counter("disk.breaker_skips").value == 2
        assert len(cache) == 0
        # Cooldown elapses; the half-open probe succeeds (chaos spent).
        clock.now += 31.0
        cache.put(("k", 9), {"v": 9})
        assert cache.breaker.state == "closed"
        assert cache.get(("k", 9)) == {"v": 9}

    def test_probe_failure_reopens(self, tmp_path, clock):
        cache = make_cache(tmp_path, clock, threshold=1)
        chaos_mod.install("disk.write")  # never heals
        cache.put(("k", 0), {"v": 0})
        assert cache.breaker.state == "open"
        clock.now += 31.0
        cache.put(("k", 1), {"v": 1})  # the probe, which also fails
        assert cache.breaker.state == "open"


class TestReadChaos:
    def test_read_errors_are_misses_and_feed_breaker(self, tmp_path, clock):
        metrics = MetricsRegistry()
        cache = make_cache(tmp_path, clock, metrics=metrics)
        cache.put(("k",), {"v": 1})
        chaos_mod.install("disk.read:times=2")
        assert cache.get(("k",)) is None
        assert cache.get(("k",)) is None
        assert metrics.counter("disk.io_errors").value == 2
        assert not cache.disabled
        # Chaos exhausted: the entry is intact and readable again.
        assert cache.get(("k",)) == {"v": 1}
        assert cache.breaker.state == "closed"

    def test_plain_miss_never_trips_breaker(self, tmp_path, clock):
        cache = make_cache(tmp_path, clock, threshold=1)
        for i in range(5):
            assert cache.get(("absent", i)) is None
        assert cache.breaker.state == "closed"


class TestTieredInteraction:
    def test_memory_tier_keeps_serving_while_disk_breaker_open(self, tmp_path, clock):
        disk = make_cache(tmp_path, clock, threshold=1)
        tiered = TieredBacking(_LRUBacking(maxsize=8), disk)
        chaos_mod.install("disk.write")
        tiered.put(("k",), ("v",))  # disk write fails -> breaker opens
        assert disk.breaker.state == "open"
        assert tiered.get(("k",)) == ("v",)  # memory tier still answers
