"""Unit tests of the deterministic chaos harness."""

import errno

import pytest

from repro.resilience import chaos as chaos_mod
from repro.resilience.chaos import Chaos, ChaosSpecError, inject


class TestParsing:
    def test_bare_site_fires_every_call(self):
        chaos = Chaos.parse("disk.read")
        spec = chaos.sites["disk.read"]
        assert spec.every == 1
        assert spec.kind == "raise"

    def test_full_grammar(self):
        chaos = Chaos.parse(
            "eval.slow:kind=sleep:delay=0.25:every=3;"
            "pool.spawn:kind=raise:exc=runtime:times=2"
        )
        slow = chaos.sites["eval.slow"]
        assert slow.kind == "sleep" and slow.delay == 0.25 and slow.every == 3
        spawn = chaos.sites["pool.spawn"]
        assert spawn.exc == "runtime" and spawn.times == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "site:kind=explode",
            "site:exc=nope",
            "site:every=0",
            "site:rate=2.0",
            "site:every",
            "site:unknown=1",
            "site:every=x",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ChaosSpecError):
            Chaos.parse(spec)


class TestTriggers:
    def fired_pattern(self, spec, calls):
        chaos = Chaos.parse(spec)
        site = next(iter(chaos.sites.values()))
        return [site.should_fire() for _ in range(calls)]

    def test_every(self):
        assert self.fired_pattern("s:every=3", 7) == [
            False, False, True, False, False, True, False,
        ]

    def test_times(self):
        assert self.fired_pattern("s:times=2", 5) == [
            True, True, False, False, False,
        ]

    def test_after(self):
        assert self.fired_pattern("s:after=3", 5) == [
            False, False, False, True, True,
        ]

    def test_composed_and(self):
        # every=2 AND times=4: calls 2 and 4 only.
        assert self.fired_pattern("s:every=2:times=4", 8) == [
            False, True, False, True, False, False, False, False,
        ]

    def test_rate_is_seeded_deterministic(self):
        a = self.fired_pattern("s:rate=0.5:seed=7", 50)
        b = self.fired_pattern("s:rate=0.5:seed=7", 50)
        assert a == b
        assert any(a) and not all(a)

    def test_counters_in_snapshot(self):
        chaos = Chaos.parse("s:every=2")
        chaos.fire("s")
        with pytest.raises(OSError):
            chaos.fire("s")
        assert chaos.snapshot()["s"] == {"kind": "raise", "calls": 2, "fired": 1}


class TestExecution:
    def test_oserror_is_eio(self):
        chaos = Chaos.parse("s")
        with pytest.raises(OSError) as info:
            chaos.fire("s")
        assert info.value.errno == errno.EIO

    def test_connreset(self):
        chaos = Chaos.parse("s:exc=connreset")
        with pytest.raises(ConnectionResetError):
            chaos.fire("s")

    def test_runtime(self):
        chaos = Chaos.parse("s:exc=runtime")
        with pytest.raises(RuntimeError, match="chaos"):
            chaos.fire("s")

    def test_sleep_stalls(self):
        import time

        chaos = Chaos.parse("s:kind=sleep:delay=0.05")
        start = time.perf_counter()
        chaos.fire("s")
        assert time.perf_counter() - start >= 0.04

    def test_unlisted_site_is_noop(self):
        chaos = Chaos.parse("other")
        chaos.fire("s")  # nothing raised


class TestInstallation:
    def test_inject_noop_without_spec(self):
        chaos_mod.install(None)
        inject("disk.read")  # no-op

    def test_install_string_activates(self):
        chaos_mod.install("disk.read")
        with pytest.raises(OSError):
            inject("disk.read")

    def test_uninstall_rereads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "disk.read:times=1")
        chaos_mod.uninstall()
        with pytest.raises(OSError):
            inject("disk.read")
        inject("disk.read")  # times=1 exhausted
