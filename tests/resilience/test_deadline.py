"""Deadline construction, comparison, and token arming."""

import time

import pytest

from repro.analysis.executor import CancelToken
from repro.resilience.deadline import DEADLINE_REASON, Deadline, DeadlineExceeded


class TestConstruction:
    def test_after_positive_seconds(self):
        deadline = Deadline.after(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired

    @pytest.mark.parametrize("seconds", [0, -1, -0.001])
    def test_after_rejects_nonpositive(self, seconds):
        with pytest.raises(ValueError):
            Deadline.after(seconds)

    def test_after_ms_wire_format(self):
        deadline = Deadline.after_ms(5000)
        assert 4.0 < deadline.remaining() <= 5.0


class TestExpiry:
    def test_remaining_never_negative(self):
        deadline = Deadline(time.monotonic() - 5.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_raise_if_expired(self):
        past = Deadline(time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded, match=DEADLINE_REASON):
            past.raise_if_expired()
        Deadline.after(60).raise_if_expired()  # no raise

    def test_tighten_picks_earlier(self):
        soon = Deadline.after(1.0)
        late = Deadline.after(60.0)
        assert late.tighten(soon) is soon
        assert soon.tighten(late) is soon
        assert soon.tighten(None) is soon


class TestArming:
    def test_arm_cancels_token_with_deadline_reason(self):
        token = CancelToken()
        timer = Deadline.after(0.05).arm(token)
        try:
            deadline = time.monotonic() + 2.0
            while not token.cancelled and time.monotonic() < deadline:
                time.sleep(0.005)
            assert token.cancelled
            assert token.reason == DEADLINE_REASON
        finally:
            timer.cancel()

    def test_cancelled_timer_never_fires(self):
        token = CancelToken()
        timer = Deadline.after(0.05).arm(token)
        timer.cancel()
        time.sleep(0.1)
        assert not token.cancelled
