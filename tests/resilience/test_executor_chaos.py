"""Chaos-driven executor tests: pool breaker, serial degradation.

The chaos harness injects the faults; the assertions are about the
executor's *reaction* — serial fallback, breaker transitions, crash
records — all deterministic because the triggers are counter-based.
"""

import pytest

from repro.analysis.executor import SweepExecutor
from repro.apps import hdiff
from repro.obs import MetricsRegistry
from repro.resilience import chaos as chaos_mod
from repro.resilience.breaker import CircuitBreaker

GRID = [{"idx": i} for i in range(4)]


@pytest.fixture(scope="module")
def sdfg():
    return hdiff.build_sdfg()


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _echo_point(sdfg_text, params, *cfg):
    return dict(params)


class TestEvalChaos:
    def test_injected_eval_error_is_retried_as_transient(self, sdfg):
        # eval.error raises OSError(EIO) once; the serial retry loop
        # treats it exactly like any other transient fault.
        chaos_mod.install("eval.error:times=1")
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            retries=2, backoff=0.001, point_fn=_echo_point, metrics=metrics
        )
        run = executor.run(sdfg, GRID)
        assert run.ok
        assert metrics.counter("sweep.retries").value == 1

    def test_exhausted_chaos_errors_become_records(self, sdfg):
        chaos_mod.install("eval.error")  # every call fails
        executor = SweepExecutor(retries=1, backoff=0.001, point_fn=_echo_point)
        run = executor.run(sdfg, GRID[:2])
        assert [e.kind for e in run.errors] == ["error", "error"]
        assert all("chaos" in e.message for e in run.errors)


class TestPoolBreaker:
    def test_spawn_chaos_falls_back_serial_and_trips_breaker(self, sdfg):
        chaos_mod.install("pool.spawn")
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            "pool", failure_threshold=1, reset_timeout=30.0, clock=FakeClock()
        )
        executor = SweepExecutor(
            workers=2, point_fn=_echo_point, metrics=metrics, breaker=breaker
        )
        run = executor.run(sdfg, GRID)
        assert run.ok  # degraded, not broken
        assert [p["idx"] for p in run.points] == [0, 1, 2, 3]
        assert metrics.counter("sweep.serial_fallbacks").value == 1
        assert breaker.state == "open"

    def test_open_breaker_skips_pool_entirely(self, sdfg):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "pool", failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            workers=2, point_fn=_echo_point, metrics=metrics, breaker=breaker
        )
        run = executor.run(sdfg, GRID)
        assert run.ok
        assert metrics.counter("sweep.breaker.skipped_pool").value == 1
        assert metrics.counter("sweep.pool_spawns").value == 0

    def test_half_open_probe_recovers_pool(self, sdfg):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "pool", failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 31.0
        metrics = MetricsRegistry()
        executor = SweepExecutor(
            workers=2, point_fn=_echo_point, metrics=metrics, breaker=breaker
        )
        run = executor.run(sdfg, GRID)  # the half-open probe, and it works
        assert run.ok
        assert metrics.counter("sweep.pool_spawns").value == 1
        assert breaker.state == "closed"


class TestWorkerKillChaos:
    def test_persistent_worker_death_degrades_to_serial(self, sdfg, monkeypatch):
        # Workers read REPRO_CHAOS from the environment; every worker
        # SIGKILLs itself before its first point, so the pool never
        # becomes operational — the executor respawns up to the cap,
        # then falls back to serial evaluation (the coordinating process
        # does not hit the worker.kill site) and feeds the breaker.
        # Every point still completes: availability beats parallelism.
        monkeypatch.setenv("REPRO_CHAOS", "worker.kill:kind=kill")
        chaos_mod.uninstall()  # re-read the environment (workers inherit it)
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            "pool", failure_threshold=1, reset_timeout=30.0, clock=FakeClock()
        )
        executor = SweepExecutor(
            workers=1, retries=1, backoff=0.001, max_respawns=1,
            point_fn=_echo_point, metrics=metrics, breaker=breaker,
        )
        run = executor.run(sdfg, GRID[:3])
        assert run.ok
        assert [p["idx"] for p in run.points] == [0, 1, 2]
        assert metrics.counter("sweep.pool_respawns").value >= 1
        assert metrics.counter("sweep.serial_fallbacks").value == 1
        assert breaker.state == "open"
