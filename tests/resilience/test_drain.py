"""DrainState lifecycle tests."""

import threading
import time

from repro.obs.metrics import MetricsRegistry
from repro.resilience.drain import DrainState


class TestLifecycle:
    def test_serving_admits(self):
        drain = DrainState()
        assert drain.phase == "serving"
        assert drain.enter()
        assert drain.inflight == 1
        drain.exit()
        assert drain.inflight == 0

    def test_draining_refuses_new_work(self):
        drain = DrainState()
        assert drain.enter()
        assert drain.begin_drain()
        assert not drain.enter()
        assert drain.inflight == 1  # the pre-drain request stays counted

    def test_begin_drain_idempotent(self):
        drain = DrainState()
        assert drain.begin_drain()
        assert not drain.begin_drain()
        assert drain.phase == "draining"

    def test_stop_records_forced(self):
        metrics = MetricsRegistry()
        drain = DrainState(metrics=metrics)
        drain.begin_drain()
        drain.stop(forced=True)
        doc = metrics.to_dict()
        assert drain.phase == "stopped"
        assert doc["counters"]["serve.drain.forced"] == 1
        assert doc["states"]["serve.phase"]["value"] == "stopped"


class TestWaitIdle:
    def test_immediate_when_idle(self):
        drain = DrainState()
        assert drain.wait_idle(timeout=0.01)

    def test_times_out_with_inflight_work(self):
        drain = DrainState()
        drain.enter()
        start = time.monotonic()
        assert not drain.wait_idle(timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_wakes_when_last_request_exits(self):
        drain = DrainState()
        drain.enter()

        def finish():
            time.sleep(0.05)
            drain.exit()

        worker = threading.Thread(target=finish)
        worker.start()
        try:
            assert drain.wait_idle(timeout=2.0)
        finally:
            worker.join()


class TestMetrics:
    def test_phase_and_inflight_instruments(self):
        metrics = MetricsRegistry()
        drain = DrainState(metrics=metrics)
        drain.enter()
        drain.begin_drain()
        doc = metrics.to_dict()
        assert doc["states"]["serve.phase"]["value"] == "draining"
        assert doc["gauges"]["serve.inflight"] == 1
        assert doc["counters"]["serve.drain.initiated"] == 1
        assert drain.snapshot() == {"phase": "draining", "inflight": 1}
