"""Cross-module integration tests: complete workflows end-to-end.

Each test drives a full pipeline the way a user would — frontend →
analysis → transformation → simulation → rendering — checking the pieces
compose, not just that each works alone.
"""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.apps import bert, hdiff
from repro.codegen import call_sdfg
from repro.tool import Session
from repro.viz.heatmap import Heatmap


class TestHdiffFullWorkflow:
    """The complete Section VI-B walkthrough via the Session facade."""

    def test_analysis_to_optimization_to_execution(self):
        # 1. Analyze the baseline in the local view.
        sdfg = hdiff.build_sdfg()
        lv_before = Session(sdfg).local_view(
            hdiff.LOCAL_VIEW_SIZES, **hdiff.FIG7_CACHE
        )
        moved_before = lv_before.physical_movement()["in_field"]

        # 2. Apply the three tuning steps the view motivated.
        hdiff.apply_reshape(sdfg)
        hdiff.apply_reorder(sdfg)
        hdiff.apply_padding(sdfg)
        sdfg.validate()

        # 3. Re-analyze: the model confirms the improvement.
        lv_after = Session(sdfg).local_view(
            hdiff.LOCAL_VIEW_SIZES, **hdiff.FIG7_CACHE
        )
        moved_after = lv_after.physical_movement()["in_field"]
        assert moved_after < moved_before

        # 4. The transformed program still computes hdiff (execute it).
        I, J, K = 6, 6, 3
        in_field, out_field, coeff = hdiff.initialize(I, J, K)
        reference = out_field.copy()
        hdiff.hdiff_numpy_baseline(in_field, reference, coeff)
        out_km = np.zeros((K, I, J))
        call_sdfg(
            sdfg,
            np.ascontiguousarray(in_field.transpose(2, 0, 1)),
            np.ascontiguousarray(coeff.transpose(2, 0, 1)),
            out_km,
        )
        np.testing.assert_allclose(out_km.transpose(1, 2, 0), reference)

    def test_report_contains_all_panels(self, tmp_path):
        session = Session(hdiff.build_sdfg())
        lv = session.local_view(hdiff.LOCAL_VIEW_SIZES, **hdiff.FIG7_CACHE)
        report = session.report()
        report.add_svg(
            session.global_view().render(
                env=hdiff.LOCAL_VIEW_SIZES, edge_overlay="movement"
            )
        )
        report.add_svg(
            lv.render_container("in_field", values=lv.miss_heatmap("in_field"))
        )
        report.add_svg(lv.render_reuse_histogram("in_field", (2, 2, 0)))
        path = tmp_path / "full.html"
        report.save(str(path))
        text = path.read_text()
        assert text.count("<svg") == 3


class TestBertFullWorkflow:
    """The complete Section VI-A walkthrough at tiny validation sizes."""

    SIZES = {"B": 1, "H": 2, "SM": 8, "EMB": 16, "FF": 32, "P": 8}

    def test_fused_sdfg_still_computes_the_encoder(self):
        w = bert.initialize(self.SIZES)
        reference = bert.encoder_baseline(w)

        sdfg = bert.build_sdfg()
        bert.apply_fusion_stage1(sdfg, bert.PAPER_SIZES)
        bert.apply_fusion_stage2(sdfg)
        sdfg.validate()

        from repro.codegen import interpret_sdfg

        out = np.zeros_like(reference)
        arrays = {
            "x": w.x, "wq": w.wq, "wk": w.wk, "wv": w.wv,
            "bq": w.bq, "bk": w.bk, "bv": w.bv,
            "wo": w.wo, "bo": w.bo,
            "w1": w.w1, "b1": w.b1, "w2": w.w2, "b2": w.b2,
            "gamma1": w.gamma1, "beta1": w.beta1,
            "gamma2": w.gamma2, "beta2": w.beta2,
            "out": out,
        }
        interpret_sdfg(sdfg, arrays, self.SIZES)
        np.testing.assert_allclose(out, reference, rtol=1e-8)

    def test_simulation_of_fused_graph(self):
        sdfg = bert.build_sdfg()
        bert.apply_fusion_stage1(sdfg, bert.PAPER_SIZES)
        lv = Session(sdfg).local_view(self.SIZES)
        # The fused intermediates are gone from the trace.
        assert "scaled" not in lv.result.containers()
        assert "cube" not in lv.result.containers()
        # The inputs/outputs are still exercised.
        assert lv.result.total_accesses("x") > 0
        assert lv.result.total_accesses("out") > 0


class TestProfileDrivenOverlay:
    """Measured metrics flow into the same rendering path as static ones."""

    def test_profile_to_heatmap_to_svg(self):
        from repro.analysis.profiling import profile_execution
        from repro.apps import linalg
        from repro.viz.graphview import render_state

        sdfg = linalg.build_outer_product()
        rng = np.random.default_rng(2)
        arrays = {
            "A": rng.random(4), "B": rng.random(3), "C": np.zeros((4, 3)),
        }
        report = profile_execution(sdfg, arrays, {"M": 4, "N": 3})
        state = sdfg.start_state
        edge_values = report.measured_edge_accesses(state)
        heatmap = Heatmap(edge_values, method="median")
        svg = render_state(state, edge_heatmap=heatmap)
        ET.fromstring(svg)


class TestFullSizeAggregatedView:
    def test_hdiff_full_size_tiles(self):
        """Simulate hdiff at *full* paper sizes is infeasible interactively;
        a quarter-scale run with tile aggregation demonstrates the
        Discussion's full-size pathway."""
        session = Session(hdiff.build_sdfg())
        env = {"I": 16, "J": 16, "K": 4}
        lv = session.local_view(env)
        counts = {
            k: float(v) for k, v in lv.access_heatmap("in_field").items()
        }
        svg = lv.render_container_aggregated("in_field", counts, tile=(4, 4, 4))
        ET.fromstring(svg)
        # 20x20x4 elements -> 5x5x1 tiles.
        assert "4x4x4 tiles" in svg


class TestSerializationOfTransformedGraphs:
    def test_fused_bert_round_trips(self):
        from repro.sdfg.serialize import from_json, to_json

        sdfg = bert.build_sdfg()
        bert.apply_fusion_stage1(sdfg, bert.PAPER_SIZES)
        clone = from_json(to_json(sdfg))
        clone.validate()
        assert len(clone.start_state.map_entries()) == len(
            sdfg.start_state.map_entries()
        )

    def test_relayouted_hdiff_round_trips(self):
        from repro.analysis import total_movement_bytes
        from repro.sdfg.serialize import from_json, to_json

        sdfg = hdiff.build_sdfg()
        hdiff.apply_reshape(sdfg)
        hdiff.apply_padding(sdfg)
        clone = from_json(to_json(sdfg))
        clone.validate()
        env = hdiff.LOCAL_VIEW_SIZES
        assert clone.arrays["in_field"].strides == sdfg.arrays["in_field"].strides
        assert total_movement_bytes(clone).evaluate(env) == total_movement_bytes(
            sdfg
        ).evaluate(env)
