"""Integration tests of the streaming ``POST /v1/tune`` endpoint."""

import http.client
import json

import pytest

from repro.apps import cloudsc
from repro.serve.app import AnalysisServer
from repro.tool.session import Session


@pytest.fixture()
def server():
    srv = AnalysisServer(
        Session(cloudsc.build_sdfg()), port=0, workers=2
    ).start_background()
    yield srv
    srv.stop()


def post_tune(server, body, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=timeout)
    try:
        conn.request(
            "POST", "/v1/tune", json.dumps(body).encode(),
            {"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        raw = resp.read().decode()
        if resp.status != 200:
            # Error responses are one pretty-printed JSON object.
            return resp.status, [json.loads(raw)]
        events = [
            json.loads(line) for line in raw.splitlines() if line.strip()
        ]
        return resp.status, events
    finally:
        conn.close()


class TestTuneEndpoint:
    def test_streams_search_to_completion(self, server):
        status, events = post_tune(server, {
            "params": cloudsc.LOCAL_VIEW_SIZES,
            "beam": 4, "depth": 2, "budget": 60,
            "capacity": cloudsc.CACHE["capacity_lines"],
        })
        assert status == 200
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert kinds.count("round") >= 1
        assert kinds.count("candidate") >= 1
        end = events[-1]
        assert end["improvement"] >= 0.20
        assert end["best"]["moved_bytes"] < end["baseline"]["moved_bytes"]

    def test_candidate_events_carry_scores(self, server):
        _, events = post_tune(server, {
            "params": cloudsc.LOCAL_VIEW_SIZES, "beam": 2, "depth": 1,
            "budget": 20, "capacity": cloudsc.CACHE["capacity_lines"],
        })
        candidates = [e for e in events if e["event"] == "candidate"]
        assert candidates
        for event in candidates:
            assert event["moved_bytes"] > 0
            assert event["sequence"]

    def test_missing_params_400(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/tune", b"{}",
                {"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert "params" in json.loads(resp.read())["error"]
        finally:
            conn.close()

    def test_bad_settings_400(self, server):
        for body in (
            {"params": {"NBLOCKS": 4, "KLEV": 2}, "beam": 0},
            {"params": {"NBLOCKS": 4, "KLEV": 2}, "line_size": -1},
            {"params": {"NBLOCKS": "x"}},
            {"params": {"NBLOCKS": 4}, "transforms": "reorder_map"},
        ):
            status, events = post_tune(server, body)
            assert status == 400, body

    def test_unknown_transform_reported_in_stream(self, server):
        """Search-time failures arrive as a terminal error event, not a
        broken connection."""
        status, events = post_tune(server, {
            "params": cloudsc.LOCAL_VIEW_SIZES,
            "transforms": ["not_a_transform"],
        })
        assert status == 200  # stream head was already committed
        assert events[-1]["event"] == "error"
        assert "not_a_transform" in events[-1]["error"]
