"""Integration tests of the analysis service over real sockets.

Each test class boots an :class:`~repro.serve.app.AnalysisServer` on an
ephemeral port (``port=0``) with a background event loop; clients are
plain :mod:`http.client` connections and raw sockets, exercising the
exact wire behaviour browsers and curl see.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.apps.hdiff import LOCAL_VIEW_SIZES, hdiff_program
from repro.serve.app import AnalysisServer
from repro.tool.session import Session


@pytest.fixture()
def server():
    srv = AnalysisServer(Session(hdiff_program), port=0).start_background()
    yield srv
    srv.stop()


def get(server, path, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


class TestEndpoints:
    def test_index_lists_endpoints(self, server):
        status, _, body = get(server, "/")
        payload = json.loads(body)
        assert status == 200
        assert payload["program"] == "hdiff_program"
        assert "GET /v1/local/view" in payload["endpoints"]

    def test_healthz(self, server):
        status, _, body = get(server, "/v1/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_unknown_endpoint_404(self, server):
        status, _, body = get(server, "/v1/unknown")
        assert status == 404
        assert "no such endpoint" in json.loads(body)["error"]

    def test_wrong_method_405(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/healthz", body=b"{}")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_missing_symbols_400(self, server):
        status, _, body = get(server, "/v1/local/view")
        assert status == 400
        assert "symbol" in json.loads(body)["error"]

    def test_local_view_matches_session_products(self, server):
        """The served JSON is the session's own local.point product."""
        query = "&".join(f"{k}={v}" for k, v in LOCAL_VIEW_SIZES.items())
        status, _, body = get(server, f"/v1/local/view?{query}&capacity=4")
        assert status == 200
        served = json.loads(body)

        golden_run = Session(hdiff_program).sweep(
            [LOCAL_VIEW_SIZES], capacity_lines=4, on_error="record"
        )
        golden = golden_run.outcomes[0].to_dict()
        assert served["params"] == golden["params"]
        assert served["total_accesses"] == golden["total_accesses"]
        assert served["total_misses"] == golden["total_misses"]
        assert served["total_moved_bytes"] == golden["total_moved_bytes"]
        assert served["containers"] == golden["containers"]
        assert served["cache_model"] == {"line_size": 64, "capacity_lines": 4}

    def test_global_heatmap_matches_session_totals(self, server):
        env = {"I": 16, "J": 16, "K": 4}
        query = "&".join(f"{k}={v}" for k, v in env.items())
        status, headers, body = get(
            server, f"/v1/global/heatmap?{query}&format=json"
        )
        assert status == 200
        served = json.loads(body)

        gv = Session(hdiff_program).global_view()
        assert served["total_movement_bytes"] == gv.total_movement(env)
        assert served["total_ops"] == gv.total_ops(env)
        assert served["edges"]  # per-edge rows present
        assert all("bytes" in edge for edge in served["edges"])

    def test_global_heatmap_svg(self, server):
        status, headers, body = get(server, "/v1/global/heatmap?I=8&J=8&K=2")
        assert status == 200
        assert headers["Content-Type"] == "image/svg+xml"
        assert body.startswith(b"<svg")

    def test_metrics_endpoint_exports_registry(self, server):
        get(server, "/v1/local/view?I=4&J=4&K=2")
        status, _, body = get(server, "/v1/metrics")
        payload = json.loads(body)
        assert status == 200
        assert payload["counters"]["serve.v1.local.view.requests"] == 1
        assert "pass.local.point.runs" in payload["counters"]
        assert "serve.v1.local.view.seconds" in payload["histograms"]
        assert "simulation_cache" in payload


class TestETag:
    def test_revalidation_round_trip(self, server):
        path = "/v1/local/view?I=4&J=4&K=2"
        status, headers, body = get(server, path)
        assert status == 200
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')

        status, headers2, body2 = get(server, path, {"If-None-Match": etag})
        assert status == 304
        assert body2 == b""
        assert headers2["ETag"] == etag
        assert server.metrics.counter("serve.etag_304").value == 1

    def test_304_skips_evaluation_entirely(self, server):
        path = "/v1/local/view?I=4&J=4&K=2"
        _, headers, _ = get(server, path)
        runs_before = server.metrics.counter("pass.local.point.runs").value
        led_before = server.metrics.counter("serve.coalesce.led").value
        status, _, _ = get(server, path, {"If-None-Match": headers["ETag"]})
        assert status == 304
        assert server.metrics.counter("pass.local.point.runs").value == runs_before
        assert server.metrics.counter("serve.coalesce.led").value == led_before

    def test_distinct_requests_get_distinct_etags(self, server):
        _, h1, _ = get(server, "/v1/local/view?I=4&J=4&K=2")
        _, h2, _ = get(server, "/v1/local/view?I=4&J=4&K=3")
        _, h3, _ = get(server, "/v1/local/view?I=4&J=4&K=2&capacity=8")
        assert h1["ETag"] != h2["ETag"]
        assert h1["ETag"] != h3["ETag"]

    def test_stale_etag_gets_fresh_body(self, server):
        path = "/v1/local/view?I=4&J=4&K=2"
        status, _, body = get(server, path, {"If-None-Match": '"stale"'})
        assert status == 200
        assert json.loads(body)["params"] == {"I": 4, "J": 4, "K": 2}


class TestCoalescing:
    CLIENTS = 8

    def test_identical_burst_costs_one_evaluation(self, server):
        """N identical concurrent requests -> exactly one pipeline run."""
        metrics = server.metrics
        original = server.session.sweep

        def gated_sweep(*args, **kwargs):
            # Hold the leader's evaluation open until every other client
            # has joined the in-flight entry, making the overlap (and
            # therefore the counters below) deterministic.
            deadline = time.time() + 10
            joined = metrics.counter("serve.coalesce.joined")
            while joined.value < self.CLIENTS - 1 and time.time() < deadline:
                time.sleep(0.01)
            return original(*args, **kwargs)

        server.session.sweep = gated_sweep
        path = "/v1/local/view?I=4&J=4&K=2"
        results = []

        def client():
            results.append(get(server, path))

        threads = [
            threading.Thread(target=client) for _ in range(self.CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        bodies = {body for _, _, body in results}
        assert len(results) == self.CLIENTS
        assert all(status == 200 for status, _, _ in results)
        assert len(bodies) == 1  # every client got the identical product
        assert metrics.counter("pass.local.point.runs").value == 1
        assert metrics.counter("serve.coalesce.led").value == 1
        assert metrics.counter("serve.coalesce.joined").value == self.CLIENTS - 1

    def test_different_params_do_not_coalesce(self, server):
        get(server, "/v1/local/view?I=4&J=4&K=2")
        get(server, "/v1/local/view?I=4&J=4&K=3")
        assert server.metrics.counter("serve.coalesce.led").value == 2
        assert server.metrics.counter("serve.coalesce.joined").value == 0


class TestDisconnect:
    def test_client_disconnect_cancels_and_pool_stays_healthy(self, server):
        """Dropping the only client cancels its token; the server keeps
        serving afterwards."""
        started = threading.Event()
        release = threading.Event()
        tokens = []
        original = server.session.sweep

        def slow_sweep(*args, **kwargs):
            tokens.append(kwargs.get("cancel"))
            started.set()
            release.wait(10)
            return original(*args, **kwargs)

        server.session.sweep = slow_sweep

        raw = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        raw.sendall(
            b"GET /v1/local/view?I=4&J=4&K=2 HTTP/1.1\r\n"
            b"Host: x\r\n\r\n"
        )
        assert started.wait(10), "evaluation never started"
        raw.close()  # client walks away mid-evaluation

        deadline = time.time() + 10
        while (
            server.metrics.counter("serve.disconnects").value == 0
            and time.time() < deadline
        ):
            time.sleep(0.01)
        assert server.metrics.counter("serve.disconnects").value == 1
        assert tokens[0] is not None and tokens[0].cancelled
        assert "disconnected" in tokens[0].reason
        release.set()

        # The worker pool and session survived: a fresh request works.
        server.session.sweep = original
        status, _, body = get(server, "/v1/local/view?I=4&J=4&K=2")
        assert status == 200
        assert json.loads(body)["params"] == {"I": 4, "J": 4, "K": 2}


class TestSweepStreaming:
    def test_sweep_streams_ndjson_progress(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        payload = json.dumps(
            {"grid": {"I": [2, 4], "J": [4], "K": [2]}, "capacity": 4}
        )
        conn.request(
            "POST",
            "/v1/sweep",
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == "application/x-ndjson"
        events = [
            json.loads(line) for line in resp.read().decode().splitlines()
        ]
        conn.close()
        assert events[0]["event"] == "start"
        points = [e for e in events if e["event"] == "point"]
        assert [p["index"] for p in points] == [0, 1]
        assert all(p["status"] == "ok" for p in points)
        assert {tuple(sorted(p["params"].items())) for p in points} == {
            (("I", 2), ("J", 4), ("K", 2)),
            (("I", 4), ("J", 4), ("K", 2)),
        }
        end = events[-1]
        assert end["event"] == "end"
        assert end["points"] == 2 and end["failed"] == 0
        assert end["seconds"] > 0

    def test_sweep_cached_points_still_stream(self, server):
        """A re-posted grid serves from cache but streams every point."""
        payload = json.dumps({"grid": {"I": [2], "J": [2], "K": [2]}})
        for _ in range(2):
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60
            )
            conn.request("POST", "/v1/sweep", body=payload)
            resp = conn.getresponse()
            events = [
                json.loads(line) for line in resp.read().decode().splitlines()
            ]
            conn.close()
            assert sum(1 for e in events if e["event"] == "point") == 1
        assert server.metrics.counter("pass.local.point.runs").value == 1

    def test_sweep_bad_grid_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("POST", "/v1/sweep", body=json.dumps({"grid": {"I": []}}))
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()

    def test_oversized_grid_is_rejected(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        body = json.dumps(
            {"grid": {"I": list(range(200)), "J": list(range(200))}}
        )
        conn.request("POST", "/v1/sweep", body=body)
        resp = conn.getresponse()
        assert resp.status == 422
        assert b"max 10000" in resp.read()
        conn.close()
