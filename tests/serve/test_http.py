"""Unit tests of the stdlib HTTP layer: parsing, pushback, responses."""

import asyncio
import json

import pytest

from repro.serve.http import (
    Connection,
    HttpError,
    Request,
    Response,
    json_response,
    read_request,
)


def run(coro):
    return asyncio.run(coro)


class _FakeWriter:
    def __init__(self):
        self.data = bytearray()
        self._closing = False

    def write(self, data):
        self.data += data

    async def drain(self):
        pass

    def is_closing(self):
        return self._closing

    def close(self):
        self._closing = True

    async def wait_closed(self):
        pass


def make_conn(payload: bytes) -> Connection:
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return Connection(reader, _FakeWriter())


class TestRequestParsing:
    def test_get_with_query(self):
        async def go():
            conn = make_conn(
                b"GET /v1/local/view?I=8&J=8 HTTP/1.1\r\n"
                b"Host: x\r\nAccept: */*\r\n\r\n"
            )
            return await read_request(conn)

        request = run(go())
        assert request.method == "GET"
        assert request.path == "/v1/local/view"
        assert request.query == {"I": "8", "J": "8"}
        assert request.header("host") == "x"
        assert request.keep_alive

    def test_post_with_body(self):
        body = json.dumps({"grid": {"I": [1, 2]}}).encode()

        async def go():
            conn = make_conn(
                b"POST /v1/sweep HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            return await read_request(conn)

        request = run(go())
        assert request.json() == {"grid": {"I": [1, 2]}}

    def test_eof_returns_none(self):
        async def go():
            return await read_request(make_conn(b""))

        assert run(go()) is None

    def test_malformed_request_line(self):
        async def go():
            return await read_request(make_conn(b"NONSENSE\r\n\r\n"))

        with pytest.raises(HttpError) as err:
            run(go())
        assert err.value.status == 400

    def test_bad_content_length(self):
        async def go():
            return await read_request(
                make_conn(b"POST / HTTP/1.1\r\nContent-Length: zap\r\n\r\n")
            )

        with pytest.raises(HttpError):
            run(go())

    def test_connection_close_header(self):
        async def go():
            conn = make_conn(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            return await read_request(conn)

        assert not run(go()).keep_alive

    def test_bad_json_body_is_400(self):
        request = Request("POST", "/x", "HTTP/1.1", {}, b"{nope")
        with pytest.raises(HttpError) as err:
            request.json()
        assert err.value.status == 400


class TestPushback:
    def test_disconnect_watch_pushes_data_back(self):
        """A byte read by the disconnect watcher must feed the next parse."""

        async def go():
            conn = make_conn(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
            dropped = await conn.wait_disconnect()
            assert not dropped  # data arrived, not EOF
            return await read_request(conn)

        request = run(go())
        assert request.path == "/v1/healthz"

    def test_eof_is_disconnect(self):
        async def go():
            return await make_conn(b"").wait_disconnect()

        assert run(go()) is True

    def test_pushback_feeds_body_reads(self):
        async def go():
            conn = make_conn(b"AB")
            await conn.wait_disconnect()  # stashes one byte
            return await conn.readexactly(2)

        assert run(go()) == b"AB"


class TestResponses:
    def test_serialize_sets_content_length(self):
        wire = Response(200, b"hello", "text/plain").serialize(keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 5" in head
        assert b"Connection: keep-alive" in head
        assert body == b"hello"

    def test_json_response_round_trips(self):
        response = json_response({"a": 1}, status=422)
        assert response.status == 422
        assert json.loads(response.body) == {"a": 1}
        assert response.headers["Content-Type"] == "application/json"
