"""Tests of the ``repro serve`` command line and its dispatch."""

from repro.serve.cli import build_parser
from repro.serve.cli import main as serve_main
from repro.tool.cli import main as cli_main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["prog.py"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 2
        assert args.cache_dir is None
        assert args.function is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["prog.py", "--function", "f", "--port", "0",
             "--workers", "4", "--cache-dir", "/tmp/c"]
        )
        assert args.port == 0
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"


class TestErrors:
    def test_missing_module_fails_cleanly(self, tmp_path, capsys):
        rc = serve_main([str(tmp_path / "nope.py")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_module_without_programs(self, tmp_path, capsys):
        module = tmp_path / "empty.py"
        module.write_text("x = 1\n")
        rc = serve_main([str(module)])
        assert rc == 1
        assert "no @repro.program" in capsys.readouterr().err


class TestDispatch:
    def test_repro_view_serve_routes_to_serve_cli(self, tmp_path, capsys):
        """``repro-view serve MODULE`` reaches the serve front end."""
        rc = cli_main(["serve", str(tmp_path / "nope.py")])
        assert rc == 1
        assert "no such file" in capsys.readouterr().err
