"""Unit tests of the in-flight coalescer: sharing, errors, cancellation."""

import asyncio
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestSharing:
    def test_identical_keys_share_one_computation(self):
        metrics = MetricsRegistry()
        coalescer = Coalescer(metrics)
        calls = []
        release = threading.Event()

        def compute(cancel):
            calls.append(1)
            release.wait(5)
            return "product"

        async def go():
            first = asyncio.ensure_future(coalescer.fetch("k", compute))
            # Let the leader register its entry before the joiners arrive.
            await asyncio.sleep(0.05)
            others = [
                asyncio.ensure_future(coalescer.fetch("k", compute))
                for _ in range(4)
            ]
            await asyncio.sleep(0.05)
            release.set()
            return await asyncio.gather(first, *others)

        results = run(go())
        assert results == ["product"] * 5
        assert len(calls) == 1
        assert metrics.counter("serve.coalesce.led").value == 1
        assert metrics.counter("serve.coalesce.joined").value == 4

    def test_distinct_keys_do_not_share(self):
        coalescer = Coalescer()
        calls = []

        async def go():
            return await asyncio.gather(
                coalescer.fetch("a", lambda c: calls.append("a") or "ra"),
                coalescer.fetch("b", lambda c: calls.append("b") or "rb"),
            )

        assert run(go()) == ["ra", "rb"]
        assert sorted(calls) == ["a", "b"]

    def test_sequential_fetches_recompute(self):
        """Coalescing is in-flight only — not a result cache."""
        coalescer = Coalescer()
        calls = []

        async def go():
            await coalescer.fetch("k", lambda c: calls.append(1))
            await coalescer.fetch("k", lambda c: calls.append(1))

        run(go())
        assert len(calls) == 2
        assert coalescer.inflight == 0

    def test_errors_propagate_to_every_waiter(self):
        coalescer = Coalescer()
        release = threading.Event()

        def compute(cancel):
            release.wait(5)
            raise ValueError("boom")

        async def go():
            tasks = [
                asyncio.ensure_future(coalescer.fetch("k", compute))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            release.set()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = run(go())
        assert all(isinstance(r, ValueError) for r in results)
        assert coalescer.inflight == 0


class TestCancellation:
    def test_last_waiter_cancels_the_token(self):
        metrics = MetricsRegistry()
        coalescer = Coalescer(metrics)
        seen_tokens = []
        release = threading.Event()

        def compute(cancel):
            seen_tokens.append(cancel)
            release.wait(5)
            return "late"

        async def go():
            task = asyncio.ensure_future(coalescer.fetch("k", compute))
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            release.set()
            await asyncio.sleep(0.05)

        run(go())
        assert seen_tokens[0].cancelled
        assert "disconnected" in seen_tokens[0].message()
        assert metrics.counter("serve.coalesce.cancelled").value == 1
        assert coalescer.inflight == 0

    def test_one_waiter_leaving_does_not_cancel_the_rest(self):
        coalescer = Coalescer()
        release = threading.Event()
        tokens = []

        def compute(cancel):
            tokens.append(cancel)
            release.wait(5)
            return "kept"

        async def go():
            leader = asyncio.ensure_future(coalescer.fetch("k", compute))
            await asyncio.sleep(0.05)
            joiner = asyncio.ensure_future(coalescer.fetch("k", compute))
            await asyncio.sleep(0.05)
            joiner.cancel()
            with pytest.raises(asyncio.CancelledError):
                await joiner
            assert not tokens[0].cancelled
            release.set()
            return await leader

        assert run(go()) == "kept"

    def test_fresh_request_after_cancellation_starts_over(self):
        coalescer = Coalescer()
        release = threading.Event()
        calls = []

        def slow(cancel):
            calls.append("slow")
            release.wait(5)
            return "slow"

        async def go():
            task = asyncio.ensure_future(coalescer.fetch("k", slow))
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The doomed entry is gone: a new request leads fresh.
            fresh = await coalescer.fetch("k", lambda c: calls.append("fresh") or "f")
            release.set()
            return fresh

        assert run(go()) == "f"
        assert calls == ["slow", "fresh"]
