"""Session-level wiring of the persistent cache.

The acceptance bar for the storage layer: a cold session over a warm
cache directory re-runs **zero** passes; sweeps warm the shared disk
from pool workers; ``load()`` generation bumps invalidate disk entries
exactly like memory entries.
"""

import subprocess
import sys

import pytest

from repro.apps import hdiff
from repro.storage import DEFAULT_MAX_BYTES, DiskCachedPointFn
from repro.tool.session import Session

PARAMS = {"I": 8, "J": 8, "K": 4}
#: The passes a local-view query actually executes (the analytic engine
#: short-circuits the enumeration chain, so trace/layout/stackdist are
#: not part of the hot path).
LOCAL_CHAIN = (
    "local.analytic",
    "local.classify",
    "local.physmove",
)


def _analyze(session):
    lv = session.local_view(dict(PARAMS))
    return (lv.miss_counts(), lv.physical_movement())


class TestWarmSession:
    def test_cold_session_on_warm_dir_runs_nothing(self, tmp_path):
        cold = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        expected = _analyze(cold)
        assert cold.metrics.counter("disk.writes").value > 0

        warm = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        assert _analyze(warm) == expected
        for name in LOCAL_CHAIN:
            assert warm.pipeline.runs(name) == 0, name
        assert warm.metrics.counter("disk.hits").value > 0
        assert warm.metrics.counter("disk.corrupt").value == 0

    def test_global_products_served_from_disk(self, tmp_path):
        cold = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        env = {"I": 32, "J": 32, "K": 8}
        expected = cold.global_view().total_movement(env)

        warm = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        assert warm.global_view().total_movement(env) == expected
        assert warm.pipeline.runs("global.totals") == 0

    def test_env_var_configures_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = Session(hdiff.build_sdfg())
        assert session.disk is not None
        assert session.disk.root == tmp_path
        _analyze(session)
        assert len(session.disk) > 0

    def test_no_cache_dir_means_memory_only(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        session = Session(hdiff.build_sdfg())
        assert session.disk is None

    def test_env_var_byte_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BYTES", "123456")
        session = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        assert session.disk.max_bytes == 123456
        monkeypatch.setenv("REPRO_CACHE_BYTES", "not a number")
        fallback = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        assert fallback.disk.max_bytes == DEFAULT_MAX_BYTES


class TestLoadInvalidatesDisk:
    def test_generation_bump_misses_disk(self, tmp_path):
        session = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        first = _analyze(session)
        writes_before = session.metrics.counter("disk.writes").value

        session.load(hdiff.build_sdfg())  # same program, new generation
        assert _analyze(session) == first
        # The generation is part of every key's scope: the old disk
        # entries no longer match, so the passes really re-ran and the
        # new results were persisted under new keys.
        for name in LOCAL_CHAIN:
            assert session.pipeline.runs(name) >= 1, name
        assert session.metrics.counter("disk.writes").value > writes_before

    def test_fresh_session_still_warm_after_other_session_loaded(self, tmp_path):
        # A load() in one session must not wipe the shared directory.
        first = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        _analyze(first)
        first.load(hdiff.build_sdfg())

        fresh = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        _analyze(fresh)
        for name in LOCAL_CHAIN:
            assert fresh.pipeline.runs(name) == 0, name


class TestCrossProcess:
    def test_second_process_served_from_disk(self, tmp_path):
        script = """
import sys
from repro.apps import hdiff
from repro.tool.session import Session
session = Session(hdiff.build_sdfg(), cache_dir=sys.argv[1])
lv = session.local_view({"I": 8, "J": 8, "K": 4})
lv.miss_counts(); lv.physical_movement()
runs = sum(session.pipeline.runs(n) for n in (
    "local.analytic", "local.classify", "local.physmove"))
print(f"runs={runs} hits={session.metrics.counter('disk.hits').value}")
"""
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script, str(tmp_path)],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert outputs[0].startswith("runs=3")
        assert outputs[1].split()[0] == "runs=0"
        assert int(outputs[1].split()[1].removeprefix("hits=")) > 0


class TestSweepWarming:
    GRID = [{"I": 8, "J": 8, "K": k} for k in (3, 4, 5)]

    def test_pool_sweep_writes_shared_disk(self, tmp_path):
        session = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        points = session.sweep([dict(p) for p in self.GRID], workers=2)
        assert len(points) == len(self.GRID)
        # Worker processes published every evaluated point.
        assert len(session.disk) >= len(self.GRID)

    def test_fresh_session_sweep_served_from_disk(self, tmp_path):
        cold = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        expected = cold.sweep([dict(p) for p in self.GRID], workers=2)

        warm = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        points = warm.sweep([dict(p) for p in self.GRID], workers=2)
        assert [p.params for p in points] == [p.params for p in expected]
        assert [p.total_moved_bytes for p in points] == [
            p.total_moved_bytes for p in expected
        ]
        # Every point came off disk in the parent — no pool was needed.
        assert warm.metrics.counter("disk.hits").value >= len(self.GRID)
        assert warm.metrics.counter("sweep.points").value == 0

    def test_serial_resweep_also_warm(self, tmp_path):
        cold = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        cold.sweep([dict(p) for p in self.GRID], workers=2)

        warm = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        points = warm.sweep([dict(p) for p in self.GRID])  # serial
        assert len(points) == len(self.GRID)
        assert warm.metrics.counter("disk.hits").value >= len(self.GRID)

    def test_point_fn_is_picklable_and_reads_cache(self, tmp_path):
        import pickle

        from repro.passes.store import ResultStore
        from repro.storage import DiskCache

        store = ResultStore(backing=DiskCache(tmp_path))
        key = ("local.point", "somekey")
        store.put(key, "cached-point")
        fn = DiskCachedPointFn(
            tmp_path,
            {(("I", 8), ("J", 8), ("K", 4)): key},
            max_bytes=DEFAULT_MAX_BYTES,
        )
        clone = pickle.loads(pickle.dumps(fn))
        result = clone(
            "unused-sdfg-text", {"I": 8, "J": 8, "K": 4}, 64, 512, False, True
        )
        assert result == "cached-point"


class TestCliCacheDir:
    def test_cli_flag_round_trip(self, tmp_path):
        from repro.tool.cli import main

        example = tmp_path / "prog.py"
        example.write_text(
            "import repro\n"
            "from repro.sdfg.dtypes import float64\n"
            "from repro.symbolic import symbols\n"
            "I, J = symbols('I J')\n"
            "@repro.program\n"
            "def tiny(A: float64[I, J], B: float64[I, J]):\n"
            "    for i, j in repro.pmap(I, J):\n"
            "        B[i, j] = A[i, j] + 1\n"
        )
        cache = tmp_path / "cache"
        out = tmp_path / "report.html"
        argv = [
            str(example), "--local", "I=8,J=8",
            "--cache-dir", str(cache), "-o", str(out),
        ]
        assert main(argv) == 0
        assert out.exists()
        assert any(cache.rglob("*.rpc"))
        assert main(argv) == 0  # warm re-run reuses the directory


@pytest.mark.parametrize("product", ["local", "global"])
def test_memory_only_sessions_unaffected(product):
    """No cache_dir: behavior identical to before the storage layer."""
    session = Session(hdiff.build_sdfg())
    if product == "local":
        assert _analyze(session)[0]
    else:
        assert session.global_view().total_movement(
            {"I": 16, "J": 16, "K": 4}
        ) > 0
    assert session.metrics.counter("disk.hits").value == 0
    assert session.metrics.counter("disk.writes").value == 0
