"""Fault injection for the persistent cache.

Every failure mode the storage layer claims to survive is exercised
here: truncated entries, bit-flipped payloads, stale version headers,
concurrent writer races, disk-full, unwritable directories, unpicklable
products, and lock starvation.  The invariant under test is always the
same — **no failure corrupts a result or raises into an analysis**; the
worst case is a recompute, and the incident is visible in metrics.

The test process runs as root in CI, so "unwritable" cannot be staged
with chmod; I/O failures are injected by monkeypatching ``os.replace``.
"""

import errno
import os
import pickle
import struct
import warnings
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import MetricsRegistry
from repro.storage import DiskCache, FileLock, StorageDegradedWarning
from repro.storage.diskcache import _HEADER, FORMAT_VERSION, MAGIC, SCHEMA_VERSION


def _entry_file(cache: DiskCache, key) -> "os.PathLike":
    path = cache._entry_path(key)
    assert path.exists(), "test setup: entry must exist before corruption"
    return path


def _fresh(tmp_path, **kwargs) -> tuple[DiskCache, MetricsRegistry]:
    metrics = MetricsRegistry()
    return DiskCache(tmp_path, metrics=metrics, **kwargs), metrics


class TestCorruptionQuarantine:
    def _assert_quarantined(self, cache, metrics, key):
        assert cache.get(key) is None  # reported as a miss, never raised
        assert metrics.counter("disk.corrupt").value == 1
        quarantined = list((cache.root / "quarantine").iterdir())
        assert len(quarantined) == 1  # kept for postmortems
        # The slot is reusable: a recompute repopulates it cleanly.
        cache.put(key, "recomputed")
        assert cache.get(key) == "recomputed"

    def test_truncated_header(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value")
        path = _entry_file(cache, ("k",))
        path.write_bytes(path.read_bytes()[: _HEADER.size // 2])
        self._assert_quarantined(cache, metrics, ("k",))

    def test_truncated_payload(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value" * 100)
        path = _entry_file(cache, ("k",))
        path.write_bytes(path.read_bytes()[:-20])
        self._assert_quarantined(cache, metrics, ("k",))

    def test_bit_flipped_payload(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value" * 100)
        path = _entry_file(cache, ("k",))
        blob = bytearray(path.read_bytes())
        blob[_HEADER.size + 10] ^= 0xFF
        path.write_bytes(bytes(blob))
        self._assert_quarantined(cache, metrics, ("k",))

    def test_bad_magic(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value")
        path = _entry_file(cache, ("k",))
        blob = path.read_bytes()
        path.write_bytes(b"JUNK" + blob[4:])
        self._assert_quarantined(cache, metrics, ("k",))

    def test_stale_format_version(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value")
        path = _entry_file(cache, ("k",))
        payload = path.read_bytes()[_HEADER.size:]
        import hashlib

        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION + 1, SCHEMA_VERSION,
            len(payload), hashlib.sha256(payload).digest(),
        )
        path.write_bytes(header + payload)
        self._assert_quarantined(cache, metrics, ("k",))

    def test_stale_schema_version(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value")
        path = _entry_file(cache, ("k",))
        payload = path.read_bytes()[_HEADER.size:]
        import hashlib

        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, SCHEMA_VERSION + 7,
            len(payload), hashlib.sha256(payload).digest(),
        )
        path.write_bytes(header + payload)
        self._assert_quarantined(cache, metrics, ("k",))

    def test_checksummed_garbage_payload(self, tmp_path):
        # Valid framing, valid checksum, but the payload is not a pickle.
        import hashlib

        cache, metrics = _fresh(tmp_path)
        payload = b"\x00not a pickle at all"
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, SCHEMA_VERSION,
            len(payload), hashlib.sha256(payload).digest(),
        )
        path = cache._entry_path(("k",))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(header + payload)
        self._assert_quarantined(cache, metrics, ("k",))

    def test_key_mismatch_hash_collision_defense(self, tmp_path):
        # An entry stored under the wrong file name (as a sha-256
        # collision would produce) must never serve the wrong value.
        cache, metrics = _fresh(tmp_path)
        cache.put(("honest",), "honest value")
        src = _entry_file(cache, ("honest",))
        dst = cache._entry_path(("victim",))
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(src.read_bytes())
        self._assert_quarantined(cache, metrics, ("victim",))
        assert cache.get(("honest",)) == "honest value"

    def test_empty_file(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        cache.put(("k",), "value")
        _entry_file(cache, ("k",)).write_bytes(b"")
        self._assert_quarantined(cache, metrics, ("k",))


class TestUnpicklableProduct:
    def test_skips_entry_without_degrading(self, tmp_path):
        cache, metrics = _fresh(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail
            cache.put(("bad",), lambda x: x)  # lambdas don't pickle
        assert metrics.counter("disk.unpicklable").value == 1
        assert not cache.disabled
        cache.put(("good",), "fine")
        assert cache.get(("good",)) == "fine"


class TestGracefulDegradation:
    def test_unwritable_directory_degrades_once(self, tmp_path, monkeypatch):
        cache, metrics = _fresh(tmp_path)

        def denied(src, dst, **kwargs):
            raise PermissionError(errno.EACCES, "read-only filesystem", str(dst))

        monkeypatch.setattr(os, "replace", denied)
        with pytest.warns(StorageDegradedWarning, match="memory-only"):
            cache.put(("k",), "value")
        assert cache.disabled
        assert metrics.counter("disk.degraded").value == 1
        # Degradation is terminal and silent from here on.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put(("k2",), "value")
            assert cache.get(("k",)) is None
        assert metrics.counter("disk.degraded").value == 1

    def test_disk_full_degrades(self, tmp_path, monkeypatch):
        cache, metrics = _fresh(tmp_path)

        def full(src, dst, **kwargs):
            raise OSError(errno.ENOSPC, "no space left on device", str(dst))

        monkeypatch.setattr(os, "replace", full)
        with pytest.warns(StorageDegradedWarning, match="disk full"):
            cache.put(("k",), "value")
        assert cache.disabled
        assert metrics.counter("disk.degraded").value == 1

    def test_failed_write_leaves_no_temp_files(self, tmp_path, monkeypatch):
        cache, _ = _fresh(tmp_path)

        def denied(src, dst, **kwargs):
            raise PermissionError(errno.EACCES, "denied", str(dst))

        monkeypatch.setattr(os, "replace", denied)
        with pytest.warns(StorageDegradedWarning):
            cache.put(("k",), "value")
        strays = [
            p for p in tmp_path.rglob("*")
            if p.is_file() and p.name.startswith(".tmp-")
        ]
        assert strays == []

    def test_uncreatable_root_degrades_at_construction(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.warns(StorageDegradedWarning):
            cache = DiskCache(blocker / "cache")
        assert cache.disabled
        cache.put(("k",), "value")  # all no-ops, nothing raises
        assert cache.get(("k",)) is None
        assert len(cache) == 0

    def test_lock_starvation_degrades(self, tmp_path):
        cache, metrics = _fresh(tmp_path, lock_timeout=0.05)
        holder = FileLock(tmp_path / ".lock", timeout=5.0)
        with holder:
            with pytest.warns(StorageDegradedWarning, match="lock starvation"):
                cache.put(("k",), "value")
        assert cache.disabled
        assert metrics.counter("disk.lock_timeouts").value == 1

    def test_reads_stay_lock_free_under_held_lock(self, tmp_path):
        cache, metrics = _fresh(tmp_path, lock_timeout=0.05)
        cache.put(("k",), "value")
        with FileLock(tmp_path / ".lock", timeout=5.0):
            assert cache.get(("k",)) == "value"  # no lock needed, no wait
        assert not cache.disabled


def _hammer(args):
    """Worker: racing writers + readers over one shared directory."""
    root, worker_id, rounds = args
    cache = DiskCache(root, metrics=None)
    anomalies = []
    for round_no in range(rounds):
        key = ("shared", round_no % 5)
        expected = f"value-{round_no % 5}" * 50
        cache.put(key, expected)
        observed = cache.get(key)
        if observed is not None and observed != expected:
            anomalies.append((worker_id, round_no, observed[:40]))
    return anomalies


class TestConcurrentWriters:
    def test_racing_processes_never_corrupt(self, tmp_path):
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(_hammer, [(str(tmp_path), w, 25) for w in range(4)])
            )
        assert [a for worker in results for a in worker] == []
        # Afterwards every entry verifies from a fresh instance.
        cache, metrics = _fresh(tmp_path)
        for round_no in range(5):
            assert cache.get(("shared", round_no)) == f"value-{round_no}" * 50
        assert metrics.counter("disk.corrupt").value == 0
        quarantine = tmp_path / "quarantine"
        assert not quarantine.exists() or not list(quarantine.iterdir())


class TestEndToEndSessionFaults:
    """A session over a damaged cache never crashes or changes results."""

    PARAMS = {"I": 8, "J": 8, "K": 4}

    def _analyze(self, session):
        lv = session.local_view(dict(self.PARAMS))
        return (lv.miss_counts(), lv.physical_movement())

    def test_fully_corrupted_cache_recomputes_identically(self, tmp_path):
        from repro.apps import hdiff
        from repro.tool.session import Session

        cold = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        expected = self._analyze(cold)
        entries = [
            path
            for shard in tmp_path.iterdir()
            if shard.is_dir() and len(shard.name) == 2
            for path in shard.glob("*.rpc")
        ]
        assert entries
        for path in entries:
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))

        warm = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
        assert self._analyze(warm) == expected
        corrupt = warm.metrics.counter("disk.corrupt").value
        assert corrupt >= len(entries) - 1  # visible in exported metrics
        assert warm.metrics.counter("disk.hits").value == 0

    def test_degraded_session_still_analyzes(self, tmp_path, monkeypatch):
        from repro.apps import hdiff
        from repro.tool.session import Session

        def denied(src, dst, **kwargs):
            raise PermissionError(errno.EACCES, "denied", str(dst))

        monkeypatch.setattr(os, "replace", denied)
        with pytest.warns(StorageDegradedWarning):
            session = Session(hdiff.build_sdfg(), cache_dir=tmp_path)
            results = self._analyze(session)
        assert results[0]  # analysis produced real miss counts
        assert session.metrics.counter("disk.degraded").value == 1
        assert session.disk is not None and session.disk.disabled

    def test_entry_format_is_self_describing(self, tmp_path):
        # Documented invariant: header fields parse independently of
        # the payload, so future readers can reject incompatibilities.
        cache, _ = _fresh(tmp_path)
        cache.put(("k",), "value")
        blob = _entry_file(cache, ("k",)).read_bytes()
        magic, fmt, schema, length, _digest = struct.unpack_from(
            "<4sHHQ32s", blob
        )
        assert magic == MAGIC
        assert (fmt, schema) == (FORMAT_VERSION, SCHEMA_VERSION)
        assert length == len(blob) - _HEADER.size
        stored_key, value = pickle.loads(blob[_HEADER.size:])
        assert stored_key == ("k",)
        assert value == "value"
