"""Regression tests for two :class:`FileLock` concurrency bugs.

1. TOCTOU in ``_break_stale``: between ``stat()`` and ``unlink()`` the
   stale marker can be released and re-created by a live holder; the
   waiter must not delete the *fresh* lock (two processes would then
   both enter the critical section).
2. ``release()`` asymmetry: the ``fcntl`` path never unlinks the
   lockfile, so its mtime ages toward the staleness threshold and a
   later ``O_EXCL``-fallback process mis-classifies a *held* flock lock
   as abandoned.  Acquire now refreshes the mtime.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import LockTimeout
from repro.storage import locks
from repro.storage.locks import _STALE_LOCKFILE_SECONDS, FileLock


def _age(path, seconds: float = 4 * _STALE_LOCKFILE_SECONDS) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


@pytest.fixture
def fallback_mode(monkeypatch):
    """Force the ``O_EXCL`` marker-file path (no :mod:`fcntl`)."""
    monkeypatch.setattr(locks, "fcntl", None)


class TestBreakStaleTOCTOU:
    def test_recreated_marker_survives_the_break(
        self, tmp_path, monkeypatch, fallback_mode
    ):
        """A marker released and re-created inside the stat→unlink window
        belongs to a live holder and must not be deleted."""
        path = tmp_path / "x.lock"
        path.write_text("crashed holder")
        _age(path)
        interleaves = []

        def interleave():
            # Inside the window: the stale marker is cleaned up elsewhere
            # and a live holder immediately re-creates it (new inode,
            # fresh mtime).
            path.unlink()
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
            os.close(fd)
            interleaves.append(1)

        monkeypatch.setattr(
            FileLock, "_break_stale_window", staticmethod(interleave)
        )
        waiter = FileLock(path, timeout=0.2, poll=0.01)
        with pytest.raises(LockTimeout):
            waiter.acquire()
        assert interleaves, "the race window was never exercised"
        assert path.exists(), "the live holder's fresh lock was deleted"

    def test_refreshed_marker_survives_the_break(
        self, tmp_path, monkeypatch, fallback_mode
    ):
        """Same race, but the holder *refreshes* the existing marker
        (same inode, new mtime) instead of re-creating it."""
        path = tmp_path / "x.lock"
        path.write_text("holder")
        _age(path)

        def interleave():
            os.utime(path)  # heartbeat from a live holder

        monkeypatch.setattr(
            FileLock, "_break_stale_window", staticmethod(interleave)
        )
        waiter = FileLock(path, timeout=0.2, poll=0.01)
        with pytest.raises(LockTimeout):
            waiter.acquire()
        assert path.exists()

    def test_genuinely_stale_marker_is_still_broken(
        self, tmp_path, fallback_mode
    ):
        """The fix must not disable crash recovery: an abandoned marker
        with no interleaved activity is broken and the lock acquired."""
        path = tmp_path / "x.lock"
        path.write_text("crashed holder")
        _age(path)
        lock = FileLock(path, timeout=1.0, poll=0.01)
        lock.acquire()
        try:
            assert lock.held
        finally:
            lock.release()

    def test_marker_vanishing_in_window_is_tolerated(
        self, tmp_path, monkeypatch, fallback_mode
    ):
        """A marker unlinked (and not re-created) inside the window makes
        the re-open fail; the waiter retries and acquires normally."""
        path = tmp_path / "x.lock"
        path.write_text("crashed holder")
        _age(path)

        def interleave():
            path.unlink(missing_ok=True)

        monkeypatch.setattr(
            FileLock, "_break_stale_window", staticmethod(interleave)
        )
        lock = FileLock(path, timeout=1.0, poll=0.01)
        lock.acquire()
        try:
            assert lock.held
        finally:
            lock.release()


class TestMixedModeStaleness:
    def test_flock_acquire_refreshes_mtime(self, tmp_path):
        """Acquiring over an aged lockfile left by a previous flock
        release must move its mtime to now."""
        if locks.fcntl is None:  # pragma: no cover - non-POSIX platforms
            pytest.skip("flock path requires fcntl")
        path = tmp_path / "x.lock"
        path.write_text("")
        _age(path)
        with FileLock(path, timeout=0.5):
            assert time.time() - path.stat().st_mtime < _STALE_LOCKFILE_SECONDS

    def test_fallback_does_not_break_held_flock_lock(
        self, tmp_path, monkeypatch
    ):
        """A held flock lock whose file *predates* the staleness window
        must not be classified stale by an O_EXCL-fallback waiter."""
        if locks.fcntl is None:  # pragma: no cover - non-POSIX platforms
            pytest.skip("flock path requires fcntl")
        path = tmp_path / "x.lock"
        # The lockfile survives from an earlier flock session (release
        # never unlinks on the fcntl path) and has aged past the
        # threshold.
        path.write_text("")
        _age(path)
        holder = FileLock(path, timeout=0.5)
        holder.acquire()
        try:
            monkeypatch.setattr(locks, "fcntl", None)
            waiter = FileLock(path, timeout=0.2, poll=0.01)
            with pytest.raises(LockTimeout):
                waiter.acquire()
            assert path.exists(), "the held lock's file was deleted"
        finally:
            # Closing the fd drops the flock even if release() takes the
            # fallback (unlink) branch under the still-active monkeypatch.
            holder.release()
