"""Tests for the crash-safe persistent cache: normal operation.

Fault injection (corruption, degradation, races) lives in
``test_fault_injection.py``; session-level wiring in
``test_session_disk.py``.
"""

import threading
import time

import pytest

from repro.errors import LockTimeout
from repro.obs import MetricsRegistry, Tracer
from repro.passes.store import ResultStore, _LRUBacking
from repro.storage import (
    DiskCache,
    FileLock,
    TieredBacking,
    approx_sizeof,
    key_digest,
)


class TestKeyDigest:
    def test_stable_across_instances(self):
        key = ("local.trace", ("fp", "abc123"), (("env", (("I", 8),)),))
        assert key_digest(key) == key_digest(key)
        assert len(key_digest(key)) == 64

    def test_distinct_keys_distinct_digests(self):
        assert key_digest(("a", 1)) != key_digest(("a", 2))
        assert key_digest(("a",)) != key_digest(("b",))

    def test_set_order_canonicalized(self):
        assert key_digest(frozenset({"x", "y", "z"})) == key_digest(
            frozenset({"z", "x", "y"})
        )

    def test_dict_order_canonicalized(self):
        assert key_digest({"a": 1, "b": 2}) == key_digest({"b": 2, "a": 1})

    def test_str_int_not_conflated(self):
        assert key_digest(("1",)) != key_digest((1,))


class TestDiskCacheRoundtrip:
    def test_roundtrip_same_instance(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k", 1), {"result": [1, 2, 3]})
        assert cache.get(("k", 1)) == {"result": [1, 2, 3]}

    def test_roundtrip_across_instances(self, tmp_path):
        DiskCache(tmp_path).put(("k", 1), ("value", 42))
        fresh = DiskCache(tmp_path)
        assert fresh.get(("k", 1)) == ("value", 42)

    def test_miss_returns_none(self, tmp_path):
        assert DiskCache(tmp_path).get(("absent",)) is None

    def test_none_is_a_legal_value_via_result_store(self, tmp_path):
        # The backing protocol reserves None for misses; the cell
        # convention of ResultStore makes None a storable product.
        store = ResultStore(backing=DiskCache(tmp_path))
        store.put(("k",), None)
        fresh = ResultStore(backing=DiskCache(tmp_path))
        assert fresh.get(("k",)) is None
        assert not ResultStore.is_miss(fresh.get(("k",)))

    def test_existing_entry_not_rewritten(self, tmp_path):
        metrics = MetricsRegistry()
        cache = DiskCache(tmp_path, metrics=metrics)
        cache.put(("k",), "v")
        cache.put(("k",), "v")
        assert metrics.counter("disk.writes").value == 1

    def test_contains_len_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert ("a",) in cache
        assert ("c",) not in cache
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_info(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=12345)
        cache.put(("a",), "x" * 100)
        info = cache.info()
        assert info["entries"] == 1
        assert info["bytes"] > 100
        assert info["max_bytes"] == 12345
        assert info["disabled"] is False
        assert info["degraded_reason"] is None


class TestCountersAndSpans:
    def test_hit_miss_counters(self, tmp_path):
        metrics = MetricsRegistry()
        cache = DiskCache(tmp_path, metrics=metrics)
        cache.get(("absent",))
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.get(("k",))
        assert metrics.counter("disk.misses").value == 1
        assert metrics.counter("disk.hits").value == 2

    def test_storage_spans_emitted(self, tmp_path):
        tracer = Tracer()
        cache = DiskCache(tmp_path, tracer=tracer)
        cache.put(("k",), "payload")
        cache.get(("k",))
        assert tracer.count("storage:write") == 1
        assert tracer.count("storage:read") == 1
        (write,) = tracer.spans("storage:write")
        assert write.attributes["bytes"] > 0

    def test_no_collectors_is_fine(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k",), 1)
        assert cache.get(("k",)) == 1


class TestEviction:
    def test_byte_budget_evicts_oldest(self, tmp_path):
        metrics = MetricsRegistry()
        cache = DiskCache(tmp_path, max_bytes=4096, metrics=metrics)
        blob = "x" * 1500
        for index in range(4):
            cache.put(("k", index), blob)
            time.sleep(0.01)  # distinct mtimes for deterministic LRU order
        assert cache.total_bytes() <= 4096
        assert metrics.counter("disk.evictions").value >= 1
        assert metrics.counter("disk.evicted_bytes").value > 0
        # The newest entry always survives (the keep exemption).
        assert ("k", 3) in cache
        assert ("k", 0) not in cache

    def test_read_refreshes_lru_position(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=4096)
        blob = "x" * 1500
        cache.put(("old",), blob)
        time.sleep(0.01)
        cache.put(("mid",), blob)
        time.sleep(0.01)
        cache.get(("old",))  # touch: now newer than ("mid",)
        time.sleep(0.01)
        cache.put(("new",), blob)  # pushes past budget
        assert ("old",) in cache
        assert ("mid",) not in cache

    def test_oversized_single_entry_survives(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=64)
        cache.put(("big",), "x" * 1000)
        assert cache.get(("big",)) == "x" * 1000

    def test_eviction_span(self, tmp_path):
        tracer = Tracer()
        cache = DiskCache(tmp_path, max_bytes=2048, tracer=tracer)
        for index in range(3):
            cache.put(("k", index), "x" * 1500)
            time.sleep(0.01)
        assert tracer.count("storage:evict") >= 1


class TestFileLock:
    def test_mutual_exclusion_times_out(self, tmp_path):
        path = tmp_path / "x.lock"
        first = FileLock(path, timeout=5.0)
        second = FileLock(path, timeout=0.1)
        with first:
            with pytest.raises(LockTimeout):
                second.acquire()

    def test_release_allows_reacquire(self, tmp_path):
        path = tmp_path / "x.lock"
        lock = FileLock(path, timeout=0.5)
        with lock:
            pass
        with FileLock(path, timeout=0.5):
            pass

    def test_contended_threads_serialize(self, tmp_path):
        path = tmp_path / "x.lock"
        active = []
        overlap = []

        def worker():
            with FileLock(path, timeout=10.0):
                active.append(1)
                overlap.append(len(active))
                time.sleep(0.01)
                active.pop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert max(overlap) == 1


class TestTieredBacking:
    def _tiers(self, tmp_path):
        memory = _LRUBacking(maxsize=8)
        disk = DiskCache(tmp_path)
        return memory, disk, TieredBacking(memory, disk)

    def test_write_through_both_tiers(self, tmp_path):
        memory, disk, tiered = self._tiers(tmp_path)
        tiered.put(("k",), ("cell",))
        assert memory.get(("k",)) == ("cell",)
        assert disk.get(("k",)) == ("cell",)

    def test_disk_hit_promoted_to_memory(self, tmp_path):
        memory, disk, tiered = self._tiers(tmp_path)
        disk.put(("k",), ("cell",))
        assert tiered.get(("k",)) == ("cell",)
        assert ("k",) in memory

    def test_clear_drops_memory_only(self, tmp_path):
        memory, disk, tiered = self._tiers(tmp_path)
        tiered.put(("k",), ("cell",))
        tiered.clear()
        assert ("k",) not in memory
        assert disk.get(("k",)) == ("cell",)
        # ... and the tiered view still serves it (via promotion).
        assert tiered.get(("k",)) == ("cell",)

    def test_info_merges_disk_stats(self, tmp_path):
        _, _, tiered = self._tiers(tmp_path)
        tiered.put(("k",), ("cell",))
        info = tiered.info()
        assert info["entries"] == 1
        assert info["disk"]["entries"] == 1


class TestApproxSizeof:
    def test_scales_with_content(self):
        assert approx_sizeof("x" * 10000) > approx_sizeof("x")
        assert approx_sizeof(list(range(1000))) > approx_sizeof([1])

    def test_walks_containers_and_objects(self):
        class Holder:
            def __init__(self):
                self.payload = "y" * 5000

        assert approx_sizeof({"k": Holder()}) > 5000

    def test_shared_substructure_counted_once(self):
        shared = "z" * 10000
        assert approx_sizeof([shared, shared]) < 2 * approx_sizeof(shared)

    def test_self_reference_terminates(self):
        loop: list = []
        loop.append(loop)
        assert approx_sizeof(loop) > 0
