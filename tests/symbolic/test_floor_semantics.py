"""Regressions: FloorDiv/Mod constant folding uses Python floor semantics.

Python's ``//`` rounds toward negative infinity and ``%`` takes the sign
of the divisor — ``(-7) // 2 == -4`` and ``(-7) % 2 == 1``, unlike
C-style truncation.  The constant folder, the tree interpreter, and the
compiled engine must all agree on these, including for negative
operands.

Also pinned here: the zero-soundness gating of the algebraic folds.
``0 / b``, ``0 % b`` and ``a / a`` style rewrites are only applied when
the denominator is *provably* nonzero (a nonzero constant, or an
expression whose integer bounds exclude zero); otherwise the fold would
silently erase a division-by-zero error.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.symbolic import (
    Integer,
    compile_expr,
    div,
    floor_div,
    mod,
    sympify,
)

X = sympify("X")


class TestNegativeConstantFolding:
    @pytest.mark.parametrize(
        "a, b, quotient, remainder",
        [
            (-7, 2, -4, 1),
            (7, -2, -4, -1),
            (-7, -2, 3, -1),
            (7, 2, 3, 1),
            (-1, 3, -1, 2),
            (-6, 3, -2, 0),
        ],
    )
    def test_constant_folds_match_python(self, a, b, quotient, remainder):
        folded_q = floor_div(sympify(a), sympify(b))
        folded_r = mod(sympify(a), sympify(b))
        assert isinstance(folded_q, Integer) and folded_q.value == a // b == quotient
        assert isinstance(folded_r, Integer) and folded_r.value == a % b == remainder

    @pytest.mark.parametrize("a, b", [(-7, 2), (7, -2), (-7, -2), (-1, 3)])
    def test_tree_and_compiled_agree_on_negatives(self, a, b):
        q = floor_div(X, sympify("Y"))
        r = mod(X, sympify("Y"))
        env = {"X": a, "Y": b}
        assert q.evaluate(env) == a // b
        assert r.evaluate(env) == a % b
        assert int(compile_expr(q).eval_points([env])[0]) == a // b
        assert int(compile_expr(r).eval_points([env])[0]) == a % b


class TestZeroSoundFoldGating:
    def test_self_division_folds_only_for_nonzero_denominators(self):
        # A bare size symbol is documented as >= 1, so X // X folds...
        assert floor_div(X, X) == sympify(1)
        assert mod(X, X) == sympify(0)
        # ...but X - 1 can be zero, so the fold must not fire.
        risky = floor_div(X - 1, X - 1)
        assert risky != sympify(1)
        with pytest.raises(EvaluationError, match="floor division by zero"):
            risky.evaluate({"X": 1})
        assert risky.evaluate({"X": 3}) == 1

    def test_zero_numerator_fold_gated_the_same_way(self):
        assert div(sympify(0), X) == sympify(0)
        risky = div(sympify(0), X - 1)
        assert risky != sympify(0)
        with pytest.raises(EvaluationError, match="division by zero"):
            risky.evaluate({"X": 1})
        assert risky.evaluate({"X": 5}) == 0

    def test_compiled_path_preserves_the_gated_error(self):
        risky = mod(sympify(0), X - 1)
        fn = compile_expr(risky)
        with pytest.raises(EvaluationError, match="modulo by zero"):
            fn.eval_points([{"X": 3}, {"X": 1}])
        assert int(fn.eval_points([{"X": 3}])[0]) == 0
