"""Property-based tests for the symbolic engine (hypothesis).

The core invariant: canonicalization never changes the value of an
expression.  We generate random expression trees alongside a direct Python
evaluation function and check the symbolic result agrees, plus round-trip
properties for printing/parsing and substitution.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Expr,
    Range,
    Subset,
    parse_expr,
    symbols,
    sympify,
)

SYMS = ("I", "J", "K")
ENV_VALUES = st.integers(min_value=1, max_value=20)


@st.composite
def envs(draw):
    return {name: draw(ENV_VALUES) for name in SYMS}


@st.composite
def exprs(draw, depth=3) -> tuple[Expr, object]:
    """Generate (symbolic expr, python-callable ground truth)."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            val = draw(st.integers(min_value=-50, max_value=50))
            return sympify(val), (lambda env, v=val: v)
        name = draw(st.sampled_from(SYMS))
        return sympify(name), (lambda env, n=name: env[n])
    op = draw(st.sampled_from(["add", "sub", "mul", "min", "max", "floordiv", "mod"]))
    left, lf = draw(exprs(depth=depth - 1))
    right, rf = draw(exprs(depth=depth - 1))
    if op == "add":
        return left + right, (lambda env: lf(env) + rf(env))
    if op == "sub":
        return left - right, (lambda env: lf(env) - rf(env))
    if op == "mul":
        return left * right, (lambda env: lf(env) * rf(env))
    if op == "min":
        from repro.symbolic import smin

        return smin(left, right), (lambda env: min(lf(env), rf(env)))
    if op == "max":
        from repro.symbolic import smax

        return smax(left, right), (lambda env: max(lf(env), rf(env)))
    # Guard divisor away from zero by adding a positive constant offset to
    # an always-positive base.
    divisor = right * right + 1
    if op == "floordiv":
        return left // divisor, (lambda env: lf(env) // (rf(env) * rf(env) + 1))
    return left % divisor, (lambda env: lf(env) % (rf(env) * rf(env) + 1))


class TestExpressionProperties:
    @given(exprs(), envs())
    @settings(max_examples=300, deadline=None)
    def test_canonicalization_preserves_value(self, pair, env):
        expr, ground_truth = pair
        assert expr.evaluate(env) == ground_truth(env)

    @given(exprs())
    @settings(max_examples=300, deadline=None)
    def test_print_parse_round_trip(self, pair):
        expr, _ = pair
        assert parse_expr(str(expr)) == expr

    @given(exprs(), envs())
    @settings(max_examples=200, deadline=None)
    def test_substitute_all_equals_evaluate(self, pair, env):
        expr, _ = pair
        folded = expr.subs(env)
        assert folded.is_constant
        assert folded.evaluate() == expr.evaluate(env)

    @given(exprs(), envs(), st.sampled_from(SYMS))
    @settings(max_examples=200, deadline=None)
    def test_partial_substitution_commutes(self, pair, env, name):
        expr, _ = pair
        partial = expr.subs({name: env[name]})
        assert partial.evaluate(env) == expr.evaluate(env)

    @given(exprs(), exprs(), envs())
    @settings(max_examples=150, deadline=None)
    def test_operator_consistency(self, a_pair, b_pair, env):
        a, fa = a_pair
        b, fb = b_pair
        assert (a + b).evaluate(env) == fa(env) + fb(env)
        assert (a * b).evaluate(env) == fa(env) * fb(env)
        assert (a - b).evaluate(env) == fa(env) - fb(env)

    @given(exprs())
    @settings(max_examples=200, deadline=None)
    def test_hash_equality_contract(self, pair):
        expr, _ = pair
        clone = parse_expr(str(expr))
        assert clone == expr
        assert hash(clone) == hash(expr)


class TestRangeProperties:
    @given(
        st.integers(-20, 20),
        st.integers(0, 30),
        st.integers(1, 5),
        envs(),
    )
    @settings(max_examples=200, deadline=None)
    def test_num_elements_matches_iteration(self, begin, extent, step, env):
        r = Range(begin, begin + extent, step)
        assert r.num_elements().evaluate(env) == len(list(r.iter_indices(env)))

    @given(st.integers(0, 10), st.integers(0, 10), st.integers(1, 4))
    @settings(max_examples=200, deadline=None)
    def test_python_range_equivalence(self, begin, length, step):
        # String form "b:e:s" must cover exactly range(b, e, s).
        end_excl = begin + length
        r = Range.from_string(f"{begin}:{end_excl}:{step}")
        assert list(r.iter_indices()) == list(range(begin, end_excl, step))

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.integers(1, 4)), min_size=1, max_size=3)
    )
    @settings(max_examples=150, deadline=None)
    def test_subset_size_is_product(self, dims):
        ranges = [Range(b, b + n - 1) for b, n in dims]
        s = Subset(ranges)
        assert s.size() == math.prod(n for _, n in dims)
        assert len(list(s.iter_points())) == s.size()

    @given(
        st.lists(st.integers(1, 4), min_size=2, max_size=4),
        st.randoms(),
    )
    @settings(max_examples=100, deadline=None)
    def test_permutation_preserves_points(self, shape, rng):
        s = Subset.full(shape)
        order = list(range(len(shape)))
        rng.shuffle(order)
        permuted = s.permuted(order)
        original = {tuple(p[order.index(d)] for d in range(len(shape)))
                    for p in permuted.iter_points()}
        assert original == set(s.iter_points())
