"""Invariants of the hash-consing intern table (repro.symbolic.compiled).

Interning maps every distinct subexpression to exactly one canonical
node, so equality between interned expressions is pointer identity and
a compiled program can key its value-numbering on ``id()``.  These tests
pin the invariants the compiler relies on:

- one canonical node per distinct structure, across separately built
  trees (identity equality);
- idempotence, and reuse of already-canonical nodes;
- ``Integer(2)`` and ``Number(2.0)`` stay distinct (they evaluate with
  different types);
- pickle round-trips re-intern to the *same* canonical node (the
  ``__getstate__`` slot filtering keeps memoized hashes and weakrefs
  out of the payload);
- interning never mutates its input;
- the table holds nodes weakly: dropping the last strong reference
  frees the entry.
"""

from __future__ import annotations

import gc
import pickle

from repro.symbolic import Add, Mul, Number, intern, interned_count, smin, sympify

I = sympify("I")
J = sympify("J")
K = sympify("K")


class TestCanonicalIdentity:
    def test_equal_trees_intern_to_one_node(self):
        a = (I + J) * K
        b = (I + J) * K
        assert a == b
        assert intern(a) is intern(b)

    def test_commuted_construction_interns_to_one_node(self):
        # The smart constructors canonicalize operand order, so J + I
        # and I + J are already structurally equal.
        assert intern(J + I) is intern(I + J)

    def test_shared_subexpressions_are_one_node(self):
        left = (I + J) * K
        right = smin(I + J, K)
        cl, cr = intern(left), intern(right)
        assert isinstance(cl, Mul)
        [add_in_mul] = [f for f in cl.args if isinstance(f, Add)]
        [add_in_min] = [a for a in cr.args if isinstance(a, Add)]
        assert add_in_mul is add_in_min

    def test_idempotent(self):
        c = intern((I + 4) * (J + 4))
        assert intern(c) is c
        assert intern(intern(c)) is c

    def test_distinct_structures_stay_distinct(self):
        assert intern(I + J) is not intern(I + K)
        assert intern(I + J) is not intern(I * J)

    def test_integer_and_float_constants_distinct(self):
        # sympify normalizes integral floats to Integer, so build the
        # float node directly: the table must still keep the two node
        # types (and value types) apart.
        two_int = sympify(2)
        two_float = Number(2.0)
        assert intern(two_int) is not intern(two_float)
        # ...but each is canonical on its own.
        assert intern(sympify(2)) is intern(two_int)
        assert intern(Number(2.0)) is intern(two_float)
        assert intern(Number(2.5)) is intern(Number(2.5))


class TestRoundTripsAndImmutability:
    def test_pickle_round_trip_reinterns_to_same_node(self):
        canonical = intern((I + 4) * (J + 4) + smin(I, K))
        loaded = pickle.loads(pickle.dumps(canonical))
        assert loaded == canonical
        assert intern(loaded) is canonical

    def test_interning_never_mutates_input(self):
        a = (I + J) * K
        before_str = str(a)
        before_children = tuple(a.args)
        intern(a)
        assert str(a) == before_str
        assert tuple(a.args) == before_children
        assert all(x is y for x, y in zip(a.args, before_children))

    def test_canonical_node_survives_equal_tree_interning(self):
        # Interning a structural twin must return the existing canonical
        # node, not replace it.
        c1 = intern((I + 1) * (J + 2))
        c2 = intern((I + 1) * (J + 2))
        assert c2 is c1


class TestWeakCleanup:
    def test_unreferenced_nodes_are_dropped(self):
        # Unique symbol names so no other test pins these entries.
        expr = (sympify("UNIQ_A") + sympify("UNIQ_B")) * sympify("UNIQ_C")
        canonical = intern(expr)
        gc.collect()
        baseline = interned_count()
        del expr, canonical
        gc.collect()
        assert interned_count() < baseline

    def test_live_references_keep_entries(self):
        canonical = intern(sympify("UNIQ_LIVE") + 1)
        gc.collect()
        count = interned_count()
        gc.collect()
        assert interned_count() == count
        assert intern(sympify("UNIQ_LIVE") + 1) is canonical
