"""Soundness tests for the interval bound analysis (int_lower_bound etc.).

The bound analysis underlies Min/Max pruning and therefore memlet
propagation; unsoundness there silently corrupts movement volumes, so the
bounds are property-tested against exhaustive evaluation over the assumed
domain (all size symbols >= 1).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import smax, smin, symbols, sympify
from repro.symbolic.expr import int_lower_bound, int_upper_bound, proves_le

SYMS = ("I", "J")


@st.composite
def bounded_exprs(draw, depth=3):
    """Random expressions over I, J with nonnegative-leaning structure."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return sympify(draw(st.integers(-10, 10)))
        return sympify(draw(st.sampled_from(SYMS)))
    op = draw(st.sampled_from(["add", "sub", "mul", "min", "max"]))
    a = draw(bounded_exprs(depth=depth - 1))
    b = draw(bounded_exprs(depth=depth - 1))
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "min":
        return smin(a, b)
    return smax(a, b)


@st.composite
def envs(draw):
    # The engine's assumption: size symbols are positive integers.
    return {name: draw(st.integers(1, 12)) for name in SYMS}


class TestBoundSoundness:
    @given(bounded_exprs(), envs())
    @settings(max_examples=300, deadline=None)
    def test_lower_bound_is_sound(self, expr, env):
        lb = int_lower_bound(expr)
        if lb is not None:
            assert expr.evaluate(env) >= lb

    @given(bounded_exprs(), envs())
    @settings(max_examples=300, deadline=None)
    def test_upper_bound_is_sound(self, expr, env):
        ub = int_upper_bound(expr)
        if ub is not None:
            assert expr.evaluate(env) <= ub

    @given(bounded_exprs(), bounded_exprs(), envs())
    @settings(max_examples=300, deadline=None)
    def test_proves_le_is_sound(self, a, b, env):
        if proves_le(a, b):
            assert a.evaluate(env) <= b.evaluate(env)

    @given(bounded_exprs(), bounded_exprs(), envs())
    @settings(max_examples=200, deadline=None)
    def test_minmax_pruning_preserves_value(self, a, b, env):
        # Pruned Min/Max must still evaluate to the true min/max.
        assert smin(a, b).evaluate(env) == min(a.evaluate(env), b.evaluate(env))
        assert smax(a, b).evaluate(env) == max(a.evaluate(env), b.evaluate(env))


class TestPropagationSoundness:
    @given(
        st.integers(0, 3),   # window offset
        st.integers(1, 4),   # window size
        st.integers(2, 10),  # map extent
    )
    @settings(max_examples=150, deadline=None)
    def test_union_covers_every_iteration(self, offset, window, extent):
        """Propagated subsets contain every per-iteration subset."""
        from repro.sdfg.memlet import Memlet
        from repro.sdfg.nodes import Map
        from repro.sdfg.propagation import propagate_memlet
        from repro.symbolic import Range

        m = Map("m", ["i"], [Range(0, extent - 1)])
        inner = Memlet("A", f"i + {offset} : i + {offset + window}")
        outer = propagate_memlet(inner, m)
        lo = outer.subset.ranges[0].begin.evaluate({})
        hi = outer.subset.ranges[0].end.evaluate({})
        for i in range(extent):
            assert lo <= i + offset
            assert hi >= i + offset + window - 1
        # Volume hint is exact: window elements per iteration.
        assert outer.volume().evaluate({}) == window * extent
