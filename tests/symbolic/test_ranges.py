"""Unit tests for symbolic ranges and subsets."""

import pytest

from repro.errors import EvaluationError, ParseError, SymbolicError
from repro.symbolic import Integer, Range, Subset, Symbol, symbols

I, J, K = symbols("I J K")


class TestRange:
    def test_inclusive_end(self):
        r = Range(0, 9)
        assert list(r.iter_indices()) == list(range(10))

    def test_point(self):
        r = Range.point(5)
        assert r.is_point
        assert r.num_elements() == Integer(1)
        assert list(r.iter_indices()) == [5]

    def test_symbolic_point(self):
        r = Range.point(I)
        assert r.is_point
        assert list(r.iter_indices({"I": 3})) == [3]

    def test_num_elements_unit_step(self):
        assert Range(0, I - 1).num_elements() == I

    def test_num_elements_strided(self):
        r = Range(0, 9, 2)
        assert r.num_elements().evaluate() == 5
        assert list(r.iter_indices()) == [0, 2, 4, 6, 8]

    def test_num_elements_strided_symbolic(self):
        r = Range(0, I - 1, 2)
        # ceil(I/2) elements
        assert r.num_elements().evaluate({"I": 9}) == 5
        assert r.num_elements().evaluate({"I": 8}) == 4

    def test_zero_step_rejected(self):
        with pytest.raises(SymbolicError):
            Range(0, 5, 0)

    def test_negative_step(self):
        r = Range(8, 0, -2)
        assert list(r.iter_indices()) == [8, 6, 4, 2, 0]

    def test_offset_by(self):
        r = Range(0, I - 1).offset_by(2)
        assert r.begin == Integer(2)
        assert r.end == I + 1

    def test_scaled_by(self):
        r = Range(1, 3).scaled_by(4)
        assert (r.begin, r.end, r.step) == (Integer(4), Integer(12), Integer(4))

    def test_subs(self):
        r = Range(0, I - 1).subs({"I": 10})
        assert list(r.iter_indices()) == list(range(10))

    def test_size(self):
        assert Range(0, I - 1).size({"I": 7}) == 7

    def test_step_zero_at_eval(self):
        r = Range(0, 5, J)
        with pytest.raises(EvaluationError):
            r.concretize({"J": 0})

    def test_equality(self):
        assert Range(0, I - 1) == Range(0, I - 1)
        assert Range(0, I - 1) != Range(0, I)

    def test_hashable(self):
        assert len({Range(0, 3), Range(0, 3)}) == 1


class TestRangeStrings:
    def test_parse_slice(self):
        r = Range.from_string("0:N")
        assert r.begin == Integer(0)
        assert r.end == Symbol("N") - 1

    def test_parse_point(self):
        r = Range.from_string("i")
        assert r.is_point
        assert r.begin == Symbol("i")

    def test_parse_step(self):
        r = Range.from_string("0:10:2")
        assert list(r.iter_indices()) == [0, 2, 4, 6, 8]

    def test_parse_expression_bounds(self):
        r = Range.from_string("2*i : 2*i + 2")
        assert r.num_elements() == Integer(2)

    def test_round_trip(self):
        for text in ["0:N", "i", "0:10:2", "1:N+1"]:
            r = Range.from_string(text)
            assert Range.from_string(str(r)) == r

    def test_invalid(self):
        with pytest.raises(ParseError):
            Range.from_string("0:1:2:3")


class TestSubset:
    def test_full(self):
        s = Subset.full([I, J])
        assert s.dims == 2
        assert s.num_elements() == I * J

    def test_from_indices(self):
        s = Subset.from_indices([I, 0])
        assert s.is_point
        assert s.indices() == (I, Integer(0))

    def test_indices_requires_point(self):
        with pytest.raises(SymbolicError):
            Subset.full([3, 4]).indices()

    def test_from_string(self):
        s = Subset.from_string("0:I, j, 0:K:2")
        assert s.dims == 3
        assert s.ranges[1].is_point

    def test_from_string_with_function_commas(self):
        s = Subset.from_string("0:Min(I, J), 0:K")
        assert s.dims == 2

    def test_empty_string_rejected(self):
        with pytest.raises(ParseError):
            Subset.from_string("")

    def test_round_trip(self):
        for text in ["0:I, j, 0:K:2", "i, j", "0:I+4, 0:J+4, 0:K"]:
            s = Subset.from_string(text)
            assert Subset.from_string(str(s)) == s

    def test_iter_points_row_major(self):
        s = Subset.from_string("0:2, 0:3")
        assert list(s.iter_points()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_iter_points_scalar(self):
        s = Subset(())
        assert list(s.iter_points()) == [()]

    def test_iter_points_empty_range(self):
        s = Subset([Range(0, -1)])  # empty
        assert list(s.iter_points()) == []

    def test_size(self):
        s = Subset.full([I, J]).subs({"I": 4})
        assert s.size({"J": 5}) == 20

    def test_permuted(self):
        s = Subset.from_string("0:I, 0:J, 0:K").permuted([2, 0, 1])
        assert str(s) == "0:K, 0:I, 0:J"

    def test_permuted_invalid(self):
        with pytest.raises(SymbolicError):
            Subset.full([2, 3]).permuted([0, 0])

    def test_num_elements_with_points(self):
        s = Subset.from_string("i, 0:J")
        assert s.num_elements() == Symbol("J")

    def test_free_symbols(self):
        s = Subset.from_string("0:I, j")
        assert s.free_symbols() == {"I", "j"}
