"""Unit tests for the symbolic expression engine."""

import math

import pytest

from repro.errors import EvaluationError, SymbolicError
from repro.symbolic import (
    Add,
    Integer,
    Max,
    Min,
    Mul,
    Number,
    Symbol,
    add,
    ceiling_div,
    div,
    evaluate_int,
    floor_div,
    mod,
    mul,
    neg,
    pow_,
    smax,
    smin,
    sub,
    symbols,
    sympify,
)


I, J, K = symbols("I J K")


class TestSympify:
    def test_int(self):
        assert sympify(5) == Integer(5)

    def test_integer_valued_float(self):
        assert sympify(5.0) == Integer(5)

    def test_float(self):
        e = sympify(2.5)
        assert isinstance(e, Number)
        assert e.evaluate() == 2.5

    def test_string(self):
        assert sympify("I + 1") == I + 1

    def test_expr_passthrough(self):
        assert sympify(I) is I

    def test_bool_rejected(self):
        with pytest.raises(SymbolicError):
            sympify(True)

    def test_unsupported_type(self):
        with pytest.raises(SymbolicError):
            sympify([1, 2])


class TestSymbol:
    def test_valid_name(self):
        assert Symbol("abc_1").name == "abc_1"

    def test_invalid_name(self):
        with pytest.raises(SymbolicError):
            Symbol("2bad")

    def test_empty_name(self):
        with pytest.raises(SymbolicError):
            Symbol("")

    def test_equality_by_name(self):
        assert Symbol("I") == Symbol("I")
        assert Symbol("I") != Symbol("J")

    def test_hash_consistent(self):
        assert hash(Symbol("I")) == hash(Symbol("I"))

    def test_free_symbols(self):
        assert I.free_symbols() == {"I"}

    def test_evaluate_requires_env(self):
        with pytest.raises(EvaluationError):
            I.evaluate()
        with pytest.raises(EvaluationError):
            I.evaluate({"J": 1})
        assert I.evaluate({"I": 7}) == 7

    def test_immutable(self):
        with pytest.raises(AttributeError):
            I.name = "X"


class TestAdd:
    def test_constant_fold(self):
        assert sympify(2) + 3 == Integer(5)

    def test_zero_identity(self):
        assert I + 0 == I
        assert 0 + I == I

    def test_flattening(self):
        e = (I + J) + K
        assert isinstance(e, Add)
        assert len(e.args) == 3

    def test_like_terms_collect(self):
        assert I + I == 2 * I

    def test_like_terms_with_coefficients(self):
        assert 2 * I + 3 * I == 5 * I

    def test_cancellation(self):
        assert I - I == Integer(0)

    def test_commutative_canonical(self):
        assert I + J == J + I

    def test_evaluate(self):
        assert (I + J * 2).evaluate({"I": 1, "J": 3}) == 7

    def test_mixed_constant_collect(self):
        assert (I + 2) + (J + 3) == I + J + 5


class TestMul:
    def test_constant_fold(self):
        assert sympify(4) * 3 == Integer(12)

    def test_one_identity(self):
        assert I * 1 == I

    def test_zero_absorbs(self):
        assert I * 0 == Integer(0)

    def test_commutative_canonical(self):
        assert I * J == J * I

    def test_power_collection(self):
        assert I * I == pow_(I, 2)

    def test_power_merge(self):
        assert I * pow_(I, 2) == pow_(I, 3)

    def test_distribution_not_automatic(self):
        # (I + 1) * J stays factored; auto-expansion would blow up volumes.
        e = (I + 1) * J
        assert isinstance(e, Mul)

    def test_evaluate(self):
        assert (2 * I * J).evaluate({"I": 3, "J": 5}) == 30

    def test_negative_coefficient_str(self):
        assert str(-I) == "-I"


class TestSubNeg:
    def test_sub(self):
        assert sub(I, J).evaluate({"I": 10, "J": 4}) == 6

    def test_neg_constant(self):
        assert neg(sympify(3)) == Integer(-3)

    def test_double_neg(self):
        assert neg(neg(I)) == I


class TestPow:
    def test_exponent_zero(self):
        assert pow_(I, 0) == Integer(1)

    def test_exponent_one(self):
        assert pow_(I, 1) == I

    def test_base_one(self):
        assert pow_(1, I) == Integer(1)

    def test_constant_fold(self):
        assert pow_(2, 10) == Integer(1024)

    def test_nested_integer_exponents(self):
        assert pow_(pow_(I, 2), 3) == pow_(I, 6)

    def test_evaluate(self):
        assert pow_(I, J).evaluate({"I": 2, "J": 5}) == 32


class TestDiv:
    def test_exact_integer_division(self):
        assert div(6, 3) == Integer(2)

    def test_inexact_division_is_float(self):
        assert div(1, 2).evaluate() == 0.5

    def test_div_by_one(self):
        assert div(I, 1) == I

    def test_div_by_zero_symbolic(self):
        with pytest.raises(SymbolicError):
            div(I, 0)

    def test_div_by_zero_at_evaluation(self):
        with pytest.raises(EvaluationError):
            div(I, J).evaluate({"I": 1, "J": 0})

    def test_self_division(self):
        assert div(I, I) == Integer(1)

    def test_zero_numerator(self):
        assert div(0, I) == Integer(0)


class TestFloorDivMod:
    def test_floordiv_fold(self):
        assert floor_div(7, 2) == Integer(3)

    def test_floordiv_negative_python_semantics(self):
        assert floor_div(-7, 2) == Integer(-4)

    def test_floordiv_by_one(self):
        assert floor_div(I, 1) == I

    def test_mod_fold(self):
        assert mod(7, 3) == Integer(1)

    def test_mod_by_one(self):
        assert mod(I, 1) == Integer(0)

    def test_mod_self(self):
        assert mod(I, I) == Integer(0)

    def test_mod_by_zero(self):
        with pytest.raises(SymbolicError):
            mod(I, 0)

    def test_ceiling_div_matches_math_ceil(self):
        for a in range(0, 30):
            for b in range(1, 9):
                assert ceiling_div(a, b).evaluate() == math.ceil(a / b)

    def test_ceiling_div_symbolic(self):
        e = ceiling_div(I, 4)
        assert e.evaluate({"I": 9}) == 3
        assert e.evaluate({"I": 8}) == 2


class TestMinMax:
    def test_constant_fold(self):
        assert smin(3, 5, 1) == Integer(1)
        assert smax(3, 5, 1) == Integer(5)

    def test_flatten(self):
        e = smin(I, smin(J, K))
        assert isinstance(e, Min)
        assert len(e.args) == 3

    def test_dedup(self):
        assert smin(I, I) == I

    def test_mixed(self):
        e = smax(I, 3, 7)
        assert isinstance(e, Max)
        assert e.evaluate({"I": 10}) == 10
        assert e.evaluate({"I": 2}) == 7

    def test_empty_rejected(self):
        with pytest.raises(SymbolicError):
            smin()


class TestSubstitution:
    def test_simple(self):
        assert (I + J).subs({"I": 3}) == J + 3

    def test_full_substitution_folds(self):
        assert (I * J + 2).subs({"I": 3, "J": 4}) == Integer(14)

    def test_symbol_to_expression(self):
        assert (I * 2).subs({"I": J + 1}) == 2 * (J + 1)

    def test_untouched(self):
        e = I + J
        assert e.subs({"K": 9}) == e

    def test_resimplification(self):
        # Substituting makes terms collapse.
        e = I * J - I * J
        assert e == Integer(0)
        e2 = (I - J).subs({"J": "I"})
        assert e2 == Integer(0)


class TestStringRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            I + J,
            I - J,
            2 * I * J,
            (I + 4) * (J + 4) * K,
            pow_(I, 2) + pow_(J, 3),
            floor_div(I, 2),
            mod(I + 1, 4),
            div(I, J),
            smin(I, J, 3),
            smax(I + 1, 2 * J),
            -I + 3,
            I * (J - 2),
            ceiling_div(I * J, 16),
        ],
    )
    def test_round_trip(self, expr):
        from repro.symbolic import parse_expr

        assert parse_expr(str(expr)) == expr


class TestEvaluateInt:
    def test_integer(self):
        assert evaluate_int(I * 2, {"I": 3}) == 6

    def test_float_integral(self):
        assert evaluate_int(div(I, 2), {"I": 8}) == 4

    def test_float_nonintegral(self):
        with pytest.raises(EvaluationError):
            evaluate_int(div(I, 2), {"I": 7})


class TestSignAnalysis:
    def test_symbols_assumed_nonnegative(self):
        assert I.is_nonnegative() is True

    def test_sum_of_nonnegative(self):
        assert (I + J + 1).is_nonnegative() is True

    def test_unknown_for_subtraction(self):
        assert (I - J).is_nonnegative() is None

    def test_product(self):
        assert (I * J).is_nonnegative() is True
        assert (-1 * I).is_nonnegative() is False
