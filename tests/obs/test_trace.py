"""Tests for the hierarchical tracing spans."""

import json
import threading

import pytest

from repro.analysis.timing import StageTimings, maybe_span
from repro.obs import NullSpan, Tracer
from repro.obs.trace import NULL_SPAN


class TestSpanRecording:
    def test_span_measures_time_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            span.set(extra="yes")
        [recorded] = tracer.spans("work")
        assert recorded is span
        assert recorded.seconds >= 0
        assert recorded.attributes == {"items": 3, "extra": "yes"}
        assert recorded.status == "ok"

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child"):
                pass
        root = tracer.roots()[0]
        assert root.name == "root"
        children = tracer.children(root)
        assert [c.name for c in children] == ["child", "child"]
        assert tracer.children(children[0])[0].name == "grandchild"
        assert tracer.children(children[1]) == []

    def test_exception_marks_span_failed_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no good")
        [span] = tracer.spans("boom")
        assert span.status == "error"
        assert "no good" in span.error
        assert span.end is not None  # still closed

    def test_record_backdates_a_measured_span(self):
        tracer = Tracer()
        span = tracer.record("worker.point", 1.5, index=4)
        assert span.seconds == pytest.approx(1.5)
        assert span.attributes == {"index": 4}
        assert tracer.count("worker.point") == 1

    def test_record_parents_under_active_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.record("inner", 0.01)
        [inner] = tracer.spans("inner")
        assert inner.parent_id == outer.span_id

    def test_add_is_stagetimings_compatible(self):
        tracer = Tracer()
        tracer.add("layout", 0.25)
        assert tracer.total("layout") == pytest.approx(0.25)

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()

        def worker():
            with tracer.span("thread-root"):
                pass

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        [other] = tracer.spans("thread-root")
        assert other.parent_id is None  # not parented under main-root

    def test_queries_and_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        assert tracer.count("a") == 2
        assert tracer.total("a") == sum(s.seconds for s in tracer.spans("a"))
        tracer.reset()
        assert tracer.spans() == []


class TestStageTimingsInterop:
    def test_finished_spans_mirror_into_stagetimings(self):
        timings = StageTimings()
        tracer = Tracer(timings=timings)
        with tracer.span("evaluate"):
            with tracer.span("layout"):
                pass
        assert timings.count("evaluate") == 1
        assert timings.count("layout") == 1

    def test_maybe_span_accepts_tracer_and_stagetimings(self):
        tracer = Tracer()
        with maybe_span(tracer, "stage") as span:
            span.set(marker=1)
        assert tracer.spans("stage")[0].attributes == {"marker": 1}

        timings = StageTimings()
        with maybe_span(timings, "stage") as span:
            assert span.set(marker=1) is span  # no-op sink, chainable
        assert timings.count("stage") == 1

        with maybe_span(None, "stage") as span:
            assert isinstance(span, NullSpan)

    def test_stagetimings_span_yields_null_sink(self):
        timings = StageTimings()
        with timings.span("classify") as span:
            assert span is NULL_SPAN


class TestExport:
    def test_to_dict_and_json_roundtrip(self):
        tracer = Tracer()
        with tracer.span("root", points=2):
            tracer.record("point", 0.1)
        doc = json.loads(tracer.to_json())
        assert doc == tracer.to_dict()
        names = [s["name"] for s in doc["spans"]]
        assert set(names) == {"root", "point"}
        root = next(s for s in doc["spans"] if s["name"] == "root")
        assert root["attributes"] == {"points": 2}
        assert root["parent"] is None

    def test_export_writes_json_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        doc = json.loads(path.read_text())
        assert doc["spans"][0]["name"] == "only"

    def test_report_renders_tree_with_errors(self):
        tracer = Tracer()
        with tracer.span("root"):
            with pytest.raises(RuntimeError):
                with tracer.span("leaf"):
                    raise RuntimeError("broken leaf")
        report = tracer.report()
        assert "root" in report
        assert "  leaf" in report  # indented under the root
        assert "broken leaf" in report

    def test_empty_report(self):
        assert Tracer().report() == "no spans recorded"
