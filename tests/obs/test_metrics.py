"""Tests for the in-process metrics registry."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_increments(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_by_name(self):
        metrics = MetricsRegistry()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.counter("x") is not metrics.counter("y")

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("down").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)


class TestHistogram:
    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] in (2.0, 3.0)

    def test_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert 90.0 <= hist.percentile(95) <= 100.0

    def test_empty_summary_and_percentile(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.summary() == {"count": 0, "sum": 0.0}
        with pytest.raises(ValueError):
            hist.percentile(50)


class TestRegistryExport:
    def test_to_dict_groups_instruments(self):
        metrics = MetricsRegistry()
        metrics.counter("retries").inc(3)
        metrics.gauge("pool").set(2)
        metrics.histogram("seconds").observe(0.5)
        doc = metrics.to_dict()
        assert doc["counters"] == {"retries": 3}
        assert doc["gauges"] == {"pool": 2.0}
        assert doc["histograms"]["seconds"]["count"] == 1

    def test_export_writes_json_file(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("done").inc()
        path = tmp_path / "metrics.json"
        metrics.export(str(path))
        assert json.loads(path.read_text())["counters"] == {"done": 1}

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.reset()
        assert metrics.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}, "states": {}
        }
        assert metrics.counter("c").value == 0  # fresh instrument


class TestThreadSafety:
    """Regression: instruments used to mutate shared state without a lock.

    Sweep workers, the storage layer and the analysis pipeline all
    increment the same registry concurrently; lost updates showed up as
    undercounted ``disk.hits``.  With the per-instrument lock the totals
    are exact, not approximate.
    """

    THREADS = 8
    ITERATIONS = 2500

    def _run(self, worker):
        import threading

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_concurrent_counter_increments_are_exact(self):
        counter = MetricsRegistry().counter("hits")
        self._run(lambda: [counter.inc() for _ in range(self.ITERATIONS)])
        assert counter.value == self.THREADS * self.ITERATIONS

    def test_concurrent_gauge_inc_dec_balances(self):
        gauge = MetricsRegistry().gauge("occupancy")

        def worker():
            for _ in range(self.ITERATIONS):
                gauge.inc(2.0)
                gauge.dec(2.0)

        self._run(worker)
        assert gauge.value == pytest.approx(0.0)

    def test_concurrent_histogram_observations_all_land(self):
        hist = MetricsRegistry().histogram("latency")
        self._run(lambda: [hist.observe(1.0) for _ in range(self.ITERATIONS)])
        summary = hist.summary()
        assert summary["count"] == self.THREADS * self.ITERATIONS
        assert summary["sum"] == pytest.approx(self.THREADS * self.ITERATIONS)

    def test_summary_during_concurrent_observation_is_consistent(self):
        # summary() snapshots under the lock: count and sum must agree
        # even while writers are racing (every observation is 1.0).
        import threading

        hist = MetricsRegistry().histogram("latency")

        def writer():
            for _ in range(2000):
                hist.observe(1.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                summary = hist.summary()
                if summary["count"]:
                    assert summary["sum"] == pytest.approx(summary["count"])
        finally:
            for thread in threads:
                thread.join()
        assert hist.summary()["count"] == 4 * 2000
