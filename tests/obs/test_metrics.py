"""Tests for the in-process metrics registry."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_increments(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_by_name(self):
        metrics = MetricsRegistry()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.counter("x") is not metrics.counter("y")

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("down").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)


class TestHistogram:
    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] in (2.0, 3.0)

    def test_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert 90.0 <= hist.percentile(95) <= 100.0

    def test_empty_summary_and_percentile(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.summary() == {"count": 0, "sum": 0.0}
        with pytest.raises(ValueError):
            hist.percentile(50)


class TestRegistryExport:
    def test_to_dict_groups_instruments(self):
        metrics = MetricsRegistry()
        metrics.counter("retries").inc(3)
        metrics.gauge("pool").set(2)
        metrics.histogram("seconds").observe(0.5)
        doc = metrics.to_dict()
        assert doc["counters"] == {"retries": 3}
        assert doc["gauges"] == {"pool": 2.0}
        assert doc["histograms"]["seconds"]["count"] == 1

    def test_export_writes_json_file(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("done").inc()
        path = tmp_path / "metrics.json"
        metrics.export(str(path))
        assert json.loads(path.read_text())["counters"] == {"done": 1}

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.reset()
        assert metrics.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert metrics.counter("c").value == 0  # fresh instrument
