"""Wall-clock smoke test of the vectorized local-view hot path.

The budget is deliberately generous (an order of magnitude above the
typical runtime on a developer machine) so the test only trips on real
regressions — e.g. the fast path silently falling back to the
interpreter — not on CI noise.
"""

import time

import pytest

from repro.apps import hdiff
from repro.tool.session import Session

#: hdiff local view at the paper's interactive sizes, scaled up 2x per
#: axis to make interpreter-level slowdowns unmistakable (~74k events).
SIZES = {"I": 16, "J": 16, "K": 8}
BUDGET_SECONDS = 5.0


@pytest.mark.perf
def test_vectorized_local_view_within_budget():
    session = Session(hdiff.build_sdfg())
    start = time.perf_counter()
    lv = session.local_view(SIZES, fast=True)
    misses = lv.miss_counts()
    elapsed = time.perf_counter() - start
    assert misses  # the pipeline actually ran
    assert sum(b.count for b in lv.result.vector_blocks) == len(lv.result.events), (
        "hdiff subsets are affine; the fast path must cover the whole trace"
    )
    assert elapsed < BUDGET_SECONDS, (
        f"local-view pipeline took {elapsed:.2f}s "
        f"(budget {BUDGET_SECONDS}s) — fast-path regression?"
    )


@pytest.mark.perf
def test_cached_requery_is_fast():
    session = Session(hdiff.build_sdfg())
    session.local_view(SIZES).miss_counts()  # populate the cache
    start = time.perf_counter()
    session.local_view(SIZES).miss_counts()
    elapsed = time.perf_counter() - start
    hits = session.cache_info()["hits"]
    assert hits >= 1, "repeat query at the same parameter point must hit the cache"
    assert elapsed < BUDGET_SECONDS
