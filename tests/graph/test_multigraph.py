"""Unit tests for the ordered multi-digraph."""

import pytest

from repro.errors import GraphError
from repro.graph import OrderedMultiDiGraph


@pytest.fixture
def diamond():
    """a -> b, a -> c, b -> d, c -> d."""
    g = OrderedMultiDiGraph()
    for n in "abcd":
        g.add_node(n)
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


class TestNodes:
    def test_insertion_order(self):
        g = OrderedMultiDiGraph()
        for n in ["z", "a", "m"]:
            g.add_node(n)
        assert g.nodes() == ["z", "a", "m"]

    def test_add_idempotent(self):
        g = OrderedMultiDiGraph()
        g.add_node("x")
        g.add_node("x")
        assert g.number_of_nodes == 1

    def test_contains(self, diamond):
        assert "a" in diamond
        assert "z" not in diamond

    def test_len_iter(self, diamond):
        assert len(diamond) == 4
        assert list(diamond) == ["a", "b", "c", "d"]

    def test_remove_node_removes_incident_edges(self, diamond):
        diamond.remove_node("b")
        assert diamond.number_of_edges == 2
        assert not diamond.has_edge("a", "b")
        assert not diamond.has_edge("b", "d")

    def test_remove_missing_node(self):
        with pytest.raises(GraphError):
            OrderedMultiDiGraph().remove_node("x")


class TestEdges:
    def test_add_edge_adds_endpoints(self):
        g = OrderedMultiDiGraph()
        g.add_edge("u", "v")
        assert g.has_node("u") and g.has_node("v")

    def test_parallel_edges(self):
        g = OrderedMultiDiGraph()
        e1 = g.add_edge("u", "v", "first")
        e2 = g.add_edge("u", "v", "second")
        assert g.number_of_edges == 2
        assert e1 is not e2
        assert [e.data for e in g.edges_between("u", "v")] == ["first", "second"]

    def test_parallel_edges_with_equal_payloads_distinct(self):
        g = OrderedMultiDiGraph()
        e1 = g.add_edge("u", "v", "same")
        g.add_edge("u", "v", "same")
        g.remove_edge(e1)
        assert g.number_of_edges == 1

    def test_self_loop(self):
        g = OrderedMultiDiGraph()
        g.add_edge("u", "u")
        assert g.in_degree("u") == 1
        assert g.out_degree("u") == 1
        g.remove_node("u")
        assert g.number_of_edges == 0

    def test_remove_edge(self, diamond):
        edge = diamond.edges_between("a", "b")[0]
        diamond.remove_edge(edge)
        assert not diamond.has_edge("a", "b")
        with pytest.raises(GraphError):
            diamond.remove_edge(edge)

    def test_edge_order(self, diamond):
        assert [(e.src, e.dst) for e in diamond.edges()] == [
            ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
        ]

    def test_edges_between_missing_node(self):
        assert OrderedMultiDiGraph().edges_between("u", "v") == []


class TestIncidence:
    def test_degrees(self, diamond):
        assert diamond.in_degree("d") == 2
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("a") == 0

    def test_predecessors_successors(self, diamond):
        assert diamond.successors("a") == ["b", "c"]
        assert diamond.predecessors("d") == ["b", "c"]

    def test_predecessors_unique(self):
        g = OrderedMultiDiGraph()
        g.add_edge("u", "v")
        g.add_edge("u", "v")
        assert g.predecessors("v") == ["u"]

    def test_sources_sinks(self, diamond):
        assert diamond.source_nodes() == ["a"]
        assert diamond.sink_nodes() == ["d"]

    def test_all_edges(self, diamond):
        edges = diamond.all_edges("b")
        assert [(e.src, e.dst) for e in edges] == [("a", "b"), ("b", "d")]

    def test_missing_node_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.in_edges("zzz")
