"""Unit and property tests for graph traversals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    OrderedMultiDiGraph,
    bfs_layers,
    dfs_postorder,
    dfs_preorder,
    has_cycle,
    topological_sort,
    weakly_connected_components,
)


def build(edges, nodes=None):
    g = OrderedMultiDiGraph()
    for n in nodes or []:
        g.add_node(n)
    for s, d in edges:
        g.add_edge(s, d)
    return g


class TestTopologicalSort:
    def test_chain(self):
        g = build([("a", "b"), ("b", "c")])
        assert topological_sort(g) == ["a", "b", "c"]

    def test_diamond_deterministic(self):
        g = build([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert topological_sort(g) == ["a", "b", "c", "d"]

    def test_cycle_raises(self):
        g = build([("a", "b"), ("b", "a")])
        with pytest.raises(GraphError):
            topological_sort(g)

    def test_self_loop_raises(self):
        g = build([("a", "a")])
        with pytest.raises(GraphError):
            topological_sort(g)

    def test_isolated_nodes_included(self):
        g = build([("a", "b")], nodes=["x"])
        order = topological_sort(g)
        assert set(order) == {"x", "a", "b"}
        assert order.index("a") < order.index("b")

    def test_parallel_edges(self):
        g = build([("a", "b"), ("a", "b")])
        assert topological_sort(g) == ["a", "b"]

    def test_empty(self):
        assert topological_sort(OrderedMultiDiGraph()) == []


class TestHasCycle:
    def test_acyclic(self):
        assert not has_cycle(build([("a", "b"), ("b", "c")]))

    def test_cyclic(self):
        assert has_cycle(build([("a", "b"), ("b", "c"), ("c", "a")]))


class TestDFS:
    def test_preorder_visits_all(self):
        g = build([("a", "b"), ("a", "c"), ("b", "d")])
        assert list(dfs_preorder(g)) == ["a", "b", "d", "c"]

    def test_postorder_children_first(self):
        g = build([("a", "b"), ("b", "c")])
        assert list(dfs_postorder(g)) == ["c", "b", "a"]

    def test_diamond_postorder(self):
        g = build([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        post = list(dfs_postorder(g))
        assert post.index("d") < post.index("b")
        assert post[-1] == "a"

    def test_explicit_sources(self):
        g = build([("a", "b"), ("c", "d")])
        assert list(dfs_preorder(g, sources=["c"])) == ["c", "d"]


class TestBFS:
    def test_layers(self):
        g = build([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert bfs_layers(g) == [["a"], ["b", "c"], ["d"]]

    def test_multiple_sources(self):
        g = build([("a", "x"), ("b", "x")])
        assert bfs_layers(g) == [["a", "b"], ["x"]]


class TestComponents:
    def test_two_components(self):
        g = build([("a", "b"), ("c", "d")])
        comps = weakly_connected_components(g)
        assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"]]

    def test_direction_ignored(self):
        g = build([("a", "b"), ("c", "b")])
        assert len(weakly_connected_components(g)) == 1


@st.composite
def random_dags(draw):
    """Random DAG: edges only go from lower to higher node index."""
    n = draw(st.integers(min_value=1, max_value=12))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=30) if possible
                 else st.just([]))
    g = OrderedMultiDiGraph()
    for i in range(n):
        g.add_node(i)
    for s, d in edges:
        g.add_edge(s, d)
    return g


class TestTraversalProperties:
    @given(random_dags())
    @settings(max_examples=150, deadline=None)
    def test_topological_order_respects_edges(self, g):
        order = topological_sort(g)
        pos = {n: i for i, n in enumerate(order)}
        assert len(order) == g.number_of_nodes
        for e in g.edges():
            assert pos[e.src] < pos[e.dst]

    @given(random_dags())
    @settings(max_examples=100, deadline=None)
    def test_dfs_covers_reachable_set(self, g):
        seen = set(dfs_preorder(g, sources=g.nodes()))
        assert seen == set(g.nodes())

    @given(random_dags())
    @settings(max_examples=100, deadline=None)
    def test_postorder_is_reverse_topological_on_trees(self, g):
        # For any DAG: in postorder, every node appears after all its
        # successors that were discovered through it or earlier roots.
        post = list(dfs_postorder(g, sources=g.nodes()))
        pos = {n: i for i, n in enumerate(post)}
        for e in g.edges():
            assert pos[e.dst] < pos[e.src]
